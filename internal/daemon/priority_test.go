package daemon

import (
	"math"
	"testing"
	"time"

	"hpcqc/internal/sched"
	"hpcqc/internal/workload"
)

func TestConstantPriorityScoresEverythingEqually(t *testing.T) {
	p, err := NewPriority("constant")
	if err != nil {
		t.Fatal(err)
	}
	items := []*sched.Item{
		{},
		{Class: sched.ClassProduction, Enqueued: time.Hour, ExpectedQPU: time.Minute, Deadline: 2 * time.Hour},
		{Deadline: -time.Second},
	}
	for _, now := range []time.Duration{0, time.Nanosecond, 7 * 24 * time.Hour} {
		for i, it := range items {
			if s := p.Score(it, now); s != 0 {
				t.Fatalf("constant score(item %d, now %s) = %g, want 0", i, now, s)
			}
		}
	}
	if p.Name() != "constant" {
		t.Fatalf("Name = %q", p.Name())
	}
}

// TestAgePriorityBoundaries covers the zero-age instant, monotone growth,
// and week-long sim times — 7 days of waiting must stay finite and ordered,
// not overflow or saturate.
func TestAgePriorityBoundaries(t *testing.T) {
	p, err := NewPriority("age")
	if err != nil {
		t.Fatal(err)
	}
	it := &sched.Item{Enqueued: time.Hour}
	if s := p.Score(it, time.Hour); s != 0 {
		t.Fatalf("age at enqueue instant = %g, want 0", s)
	}
	week := 7 * 24 * time.Hour
	s := p.Score(it, time.Hour+week)
	if s != week.Seconds() {
		t.Fatalf("week-old item scores %g, want %g", s, week.Seconds())
	}
	if math.IsInf(s, 0) || math.IsNaN(s) {
		t.Fatalf("week-old age score is not finite: %g", s)
	}
	// Strictly monotone in waiting time: an older item always outranks a
	// younger one at the same tick.
	younger := &sched.Item{Enqueued: 2 * time.Hour}
	now := time.Hour + week
	if p.Score(it, now) <= p.Score(younger, now) {
		t.Fatal("older item does not outrank younger item")
	}
}

// TestSLOUrgencyBoundaries drives the least-slack score through the deadline:
// positive slack, exactly-zero slack, and already-late jobs whose urgency
// must keep rising instead of clamping.
func TestSLOUrgencyBoundaries(t *testing.T) {
	p, err := NewPriority("slo-urgency")
	if err != nil {
		t.Fatal(err)
	}
	it := &sched.Item{
		Class:       sched.ClassProduction,
		ExpectedQPU: 30 * time.Second,
		Deadline:    10 * time.Minute,
	}
	// slack = 10m − now − 30s.
	if s := p.Score(it, 0); s != -(9*time.Minute + 30*time.Second).Seconds() {
		t.Fatalf("fresh item score = %g", s)
	}
	// Zero time-to-deadline net of service: score crosses exactly 0.
	if s := p.Score(it, 9*time.Minute+30*time.Second); s != 0 {
		t.Fatalf("zero-slack score = %g, want 0", s)
	}
	// Already late: negative slack, positive score, still rising.
	late := p.Score(it, 11*time.Minute)
	if late <= 0 {
		t.Fatalf("late item score = %g, want > 0", late)
	}
	if later := p.Score(it, 12*time.Minute); later <= late {
		t.Fatalf("urgency stopped rising after the deadline: %g then %g", late, later)
	}
	// Equal deadlines, heterogeneous service: the longer job is more urgent.
	long := &sched.Item{Class: sched.ClassProduction, ExpectedQPU: 5 * time.Minute, Deadline: 10 * time.Minute}
	if p.Score(long, time.Minute) <= p.Score(it, time.Minute) {
		t.Fatal("longer-service job not scored more urgent at equal deadline")
	}
}

// TestDeadlineFallbackResolution: items without an explicit deadline resolve
// through the per-class contract anchored at their enqueue time; items in no
// contract at all sink to the no-deadline sentinel.
func TestDeadlineFallbackResolution(t *testing.T) {
	p, err := NewPriority("slo-urgency")
	if err != nil {
		t.Fatal(err)
	}
	// Production contract: 2m base + 2× service. Enqueued at 1h with 30s
	// service ⇒ deadline 1h + 2m + 60s, slack at now=1h is 2m+60s−30s.
	it := &sched.Item{Class: sched.ClassProduction, Enqueued: time.Hour, ExpectedQPU: 30 * time.Second}
	want := -(2*time.Minute + 60*time.Second - 30*time.Second).Seconds()
	if s := p.Score(it, time.Hour); s != want {
		t.Fatalf("fallback slack score = %g, want %g", s, want)
	}
	// An explicit deadline beats the contract.
	pinned := &sched.Item{Class: sched.ClassProduction, Enqueued: time.Hour, ExpectedQPU: 30 * time.Second, Deadline: time.Hour + time.Minute}
	if p.Score(pinned, time.Hour) <= p.Score(it, time.Hour) {
		t.Fatal("explicit tighter deadline not more urgent than the class fallback")
	}
	// dev=0 removes the dev fallback: dev items without explicit deadlines
	// sort behind everything that has one.
	stripped, err := NewPriority("slo-urgency:dev=0s")
	if err != nil {
		t.Fatal(err)
	}
	dev := &sched.Item{Class: sched.ClassDev, Enqueued: time.Hour, ExpectedQPU: 30 * time.Second}
	if s := stripped.Score(dev, 2*time.Hour); s != noDeadlineScore {
		t.Fatalf("contract-less dev item score = %g, want the no-deadline sentinel", s)
	}
}

// TestEDFOrdering: EDF ranks purely by absolute deadline — earlier beats
// later, service time is irrelevant, and lateness does not change relative
// order (scores are constant in now).
func TestEDFOrdering(t *testing.T) {
	p, err := NewPriority("edf")
	if err != nil {
		t.Fatal(err)
	}
	early := &sched.Item{Class: sched.ClassProduction, Deadline: 5 * time.Minute, ExpectedQPU: time.Hour}
	late := &sched.Item{Class: sched.ClassProduction, Deadline: 6 * time.Minute, ExpectedQPU: time.Second}
	for _, now := range []time.Duration{0, 10 * time.Minute, 24 * time.Hour} {
		if p.Score(early, now) <= p.Score(late, now) {
			t.Fatalf("at now=%s EDF does not prefer the earlier deadline", now)
		}
	}
	if p.Score(early, 0) != p.Score(early, 24*time.Hour) {
		t.Fatal("EDF score varies with now")
	}
}

// TestNewPriorityParameters round-trips parameterized spellings and rejects
// the malformed ones.
func TestNewPriorityParameters(t *testing.T) {
	p, err := NewPriority("slo-urgency:deadline=120s")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "slo-urgency:deadline=120s" {
		t.Fatalf("Name = %q, want the full parameterized spelling", p.Name())
	}
	// Flat 120s allowance for every class, replacing the service factor.
	it := &sched.Item{Class: sched.ClassDev, Enqueued: 0, ExpectedQPU: 10 * time.Second}
	if s := p.Score(it, 0); s != -110 {
		t.Fatalf("flat-deadline slack = %g, want -110", s)
	}

	perClass, err := NewPriority("edf:production=90s:dev=1h")
	if err != nil {
		t.Fatal(err)
	}
	prod := &sched.Item{Class: sched.ClassProduction, Enqueued: 0}
	if s := perClass.Score(prod, 0); s != -90 {
		t.Fatalf("production=90s EDF score = %g, want -90", s)
	}
	// The untouched test-class contract still applies its service factor.
	testItem := &sched.Item{Class: sched.ClassTest, Enqueued: 0, ExpectedQPU: time.Minute}
	spec := workload.DefaultDeadlines()[sched.ClassTest]
	if s := perClass.Score(testItem, 0); s != -spec.Offset(time.Minute).Seconds() {
		t.Fatalf("test-class contract perturbed by unrelated parameter: %g", s)
	}

	for _, bad := range []string{
		"constant:deadline=1s",
		"age:deadline=1s",
		"slo-urgency:deadline",
		"slo-urgency:deadline=",
		"slo-urgency:deadline=-5s",
		"slo-urgency:deadline=banana",
		"slo-urgency:qos=1s",
		"lottery",
	} {
		if _, err := NewPriority(bad); err == nil {
			t.Errorf("NewPriority(%q) accepted", bad)
		}
	}
}

func TestAllPrioritiesConstructible(t *testing.T) {
	names := AllPriorities()
	if len(names) != 4 || names[0] != "constant" {
		t.Fatalf("AllPriorities = %v", names)
	}
	for _, name := range names {
		p, err := NewPriority(name)
		if err != nil {
			t.Fatalf("NewPriority(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("Name round-trip %q -> %q", name, p.Name())
		}
	}
	if p, err := NewPriority(""); err != nil || p.Name() != "constant" {
		t.Fatalf("empty name: %v, %v", p, err)
	}
}

// TestDeadlineSpecOffsetBoundaries pins the contract arithmetic at its
// edges: empty specs yield no deadline, and negative arithmetic clamps.
func TestDeadlineSpecOffsetBoundaries(t *testing.T) {
	if off := (workload.DeadlineSpec{}).Offset(time.Hour); off != 0 {
		t.Fatalf("empty spec offset = %s, want 0", off)
	}
	if off := (workload.DeadlineSpec{Base: time.Minute}).Offset(0); off != time.Minute {
		t.Fatalf("base-only offset = %s", off)
	}
	if off := (workload.DeadlineSpec{ServiceFactor: 2}).Offset(30 * time.Second); off != time.Minute {
		t.Fatalf("factor-only offset = %s", off)
	}
	if off := (workload.DeadlineSpec{Base: time.Minute, ServiceFactor: -120}).Offset(time.Second); off != 0 {
		t.Fatalf("negative arithmetic offset = %s, want clamp to 0", off)
	}
}
