package daemon

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hpcqc/internal/admission"
	"hpcqc/internal/device"
	"hpcqc/internal/sched"
	"hpcqc/internal/simclock"
	"hpcqc/internal/telemetry"
)

// newAdmissionEnv is a fleet daemon with an explicit admission policy.
func newAdmissionEnv(t *testing.T, n int, pol admission.Policy) (*fleetEnv, *telemetry.Registry) {
	t.Helper()
	clk := simclock.New()
	reg := telemetry.NewRegistry()
	fleet, err := device.NewFleet(n, device.Config{Clock: clk, Seed: 31, DriftInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(Config{
		Devices: fleet.Devices(), Clock: clk, Admission: pol,
		AdminToken: "admin", EnablePreemption: true, Seed: 3, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fleetEnv{clk: clk, fleet: fleet, d: d}, reg
}

// oneShotBucket admits a single dev job, then sheds the class.
func oneShotBucket() admission.Policy {
	return admission.NewTokenBucketWith(map[sched.Class]admission.Quota{
		sched.ClassDev: {RatePerHour: 0.000001, Burst: 1},
	})
}

// TestSubmitRejectedTerminal: a shed submission becomes a terminal rejected
// job record — queryable, listed, counted, and never cancellable.
func TestSubmitRejectedTerminal(t *testing.T) {
	env, reg := newAdmissionEnv(t, 1, oneShotBucket())
	s, err := env.d.OpenSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 2), Class: sched.ClassDev}); err != nil {
		t.Fatalf("first dev job rejected: %v", err)
	}
	_, err = env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 2), Class: sched.ClassDev})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("second dev job error = %v, want RejectedError", err)
	}
	if rej.Job.State != JobRejected || rej.Reason == "" {
		t.Fatalf("rejected job = %+v", rej.Job)
	}
	if rej.Job.FinishedAt != rej.Job.SubmittedAt {
		t.Fatalf("rejected job not terminal from birth: %+v", rej.Job)
	}

	// The record is owned by the session like any other job.
	j, err := env.d.JobStatus(s.Token, rej.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != JobRejected || j.AdmissionOutcome != "rejected" || !strings.Contains(j.AdmissionReason, "token-bucket") {
		t.Fatalf("job status = %+v", j)
	}

	// Cancel cannot resurrect or re-finish it.
	if err := env.d.CancelJob(s.Token, j.ID, false); err == nil || !strings.Contains(err.Error(), "already rejected") {
		t.Fatalf("cancel of rejected job = %v", err)
	}

	// It appears in the admin listing and the shed counters.
	found := false
	for _, lj := range env.d.ListJobs() {
		if lj.ID == j.ID && lj.State == JobRejected {
			found = true
		}
	}
	if !found {
		t.Fatal("rejected job missing from admin listing")
	}
	st := env.d.AdminStatus()
	if st.Rejected != 1 || st.Admission != "token-bucket" {
		t.Fatalf("admin status rejected=%d admission=%q", st.Rejected, st.Admission)
	}
	for _, metric := range []string{"daemon_admission_total", "daemon_admission_rejected_total"} {
		if !strings.Contains(reg.Expose(), metric) {
			t.Fatalf("metrics exposition missing %s", metric)
		}
	}
}

// TestPinnedSubmitShedding: a pin bypasses the router, not the door — a
// pinned submission to a partition of a shedding fleet is still rejected.
func TestPinnedSubmitShedding(t *testing.T) {
	env, _ := newAdmissionEnv(t, 2, &admission.QueueDepth{PerDeviceDepth: 1})
	s, err := env.d.OpenSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	// Two jobs start running (one per partition); the next two fill the
	// fleet-wide dev depth cap (1 × 2 partitions).
	for i := 0; i < 4; i++ {
		if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 50), Class: sched.ClassDev}); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	pin := env.d.Devices()[0].ID()
	_, err = env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 50), Class: sched.ClassDev, Device: pin})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("pinned submit to shedding fleet = %v, want RejectedError", err)
	}
	if !rej.Job.Pinned || !strings.Contains(rej.Reason, "queue-depth") {
		t.Fatalf("rejected pinned job = %+v reason %q", rej.Job, rej.Reason)
	}
	// Production is still admitted through the same door.
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 50), Class: sched.ClassProduction, Device: pin}); err != nil {
		t.Fatalf("pinned production rejected: %v", err)
	}
	env.drain(t, time.Hour)
}

// TestAdmissionDowngrade: under SLO pressure, test work is down-classed to
// dev and the job record keeps both classes.
func TestAdmissionDowngrade(t *testing.T) {
	guard := admission.NewSLOGuard()
	// Pre-load the controller at warn pressure: production p99 wait at half
	// the 60s target.
	for i := 0; i < 5; i++ {
		guard.Observe(admission.Signal{Class: sched.ClassProduction, At: 0, WaitSeconds: 30, Slowdown: -1})
	}
	env, _ := newAdmissionEnv(t, 1, guard)
	s, err := env.d.OpenSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	j, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 2), Class: sched.ClassTest})
	if err != nil {
		t.Fatal(err)
	}
	if j.Class != sched.ClassDev || j.RequestedClass != sched.ClassTest || j.AdmissionOutcome != "downgraded" {
		t.Fatalf("downgraded job = %+v", j)
	}
	if j.AdmissionReason == "" {
		t.Fatal("downgrade carries no reason")
	}
	// Dev passes unchanged at warn pressure, production always.
	for _, class := range []sched.Class{sched.ClassDev, sched.ClassProduction} {
		j, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 2), Class: class})
		if err != nil {
			t.Fatal(err)
		}
		if j.Class != class || j.AdmissionOutcome != "" {
			t.Fatalf("%s job altered by warn tier: %+v", class, j)
		}
	}
	env.drain(t, time.Hour)
}

// TestCancelRacingRejected: concurrent cancels of a job that was shed at
// admission must all fail cleanly and leave the record rejected.
func TestCancelRacingRejected(t *testing.T) {
	env, _ := newAdmissionEnv(t, 1, oneShotBucket())
	s, err := env.d.OpenSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 2), Class: sched.ClassDev}); err != nil {
		t.Fatal(err)
	}
	_, err = env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 2), Class: sched.ClassDev})
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("want RejectedError, got %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := env.d.CancelJob(s.Token, rej.Job.ID, false); err == nil {
				t.Error("cancel of rejected job succeeded")
			}
		}()
	}
	wg.Wait()
	j, err := env.d.JobStatus(s.Token, rej.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != JobRejected {
		t.Fatalf("state after cancel race = %s", j.State)
	}
}

// TestHTTPRejected429: the REST surface renders a shed submission as 429 Too
// Many Requests with the rejected job record and reason in the body.
func TestHTTPRejected429(t *testing.T) {
	env, _ := newAdmissionEnv(t, 1, oneShotBucket())
	srv := httptest.NewServer(env.d.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/api/v1/sessions", "application/json", strings.NewReader(`{"user":"alice"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	submit := func() (*http.Response, map[string]any) {
		t.Helper()
		body := `{"program":` + string(payload(t, 2)) + `,"class":"dev"}`
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/api/v1/jobs", strings.NewReader(body))
		req.Header.Set("Authorization", "Bearer "+sess.Token)
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp, out
	}

	if resp, _ := submit(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	resp2, out := submit()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit = %d, want 429", resp2.StatusCode)
	}
	if out["state"] != "rejected" || out["admission_outcome"] != "rejected" {
		t.Fatalf("429 body = %v", out)
	}
	reason, _ := out["admission_reason"].(string)
	if !strings.Contains(reason, "token-bucket") {
		t.Fatalf("429 reason = %q", reason)
	}

	// The rejected job stays queryable over HTTP.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/v1/jobs/"+out["id"].(string), nil)
	req.Header.Set("Authorization", "Bearer "+sess.Token)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(resp3.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if resp3.StatusCode != http.StatusOK || got["state"] != "rejected" {
		t.Fatalf("rejected job status = %d %v", resp3.StatusCode, got)
	}
}

// TestMalformedSubmitSparesQuota: structurally invalid submissions (bad
// program bytes, unknown device pin) fail before admission, so they cannot
// drain a stateful policy's tokens.
func TestMalformedSubmitSparesQuota(t *testing.T) {
	env, _ := newAdmissionEnv(t, 1, admission.NewTokenBucketWith(map[sched.Class]admission.Quota{
		sched.ClassDev: {RatePerHour: 0.000001, Burst: 1},
	}))
	s, err := env.d.OpenSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := env.d.Submit(s.Token, SubmitRequest{Program: []byte("not json"), Class: sched.ClassDev}); err == nil {
			t.Fatal("malformed program accepted")
		}
		// Decodes but is structurally invalid: unknown kind, zero shots.
		if _, err := env.d.Submit(s.Token, SubmitRequest{Program: []byte(`{"bogus":true}`), Class: sched.ClassDev}); err == nil {
			t.Fatal("structurally invalid program accepted")
		}
		// Well-formed but no partition can run it (over the shot cap).
		if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 1_000_000), Class: sched.ClassDev}); err == nil {
			t.Fatal("over-spec program accepted")
		}
		if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 2), Class: sched.ClassDev, Device: "no-such-partition"}); err == nil {
			t.Fatal("unknown pin accepted")
		}
	}
	// The single token is still there for a well-formed submission.
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 2), Class: sched.ClassDev}); err != nil {
		t.Fatalf("well-formed dev job rejected after malformed flood: %v", err)
	}
}

// TestRejectedHistoryBounded: a rejection flood keeps only the newest
// records while the lifetime counter keeps counting.
func TestRejectedHistoryBounded(t *testing.T) {
	clk := simclock.New()
	dev, err := device.New(device.Config{Clock: clk, Seed: 1, DriftInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(Config{
		Device: dev, Clock: clk, AdminToken: "admin", Seed: 3,
		Admission:       oneShotBucket(),
		RejectedHistory: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.OpenSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(s.Token, SubmitRequest{Program: payload(t, 50), Class: sched.ClassDev}); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 10; i++ {
		_, err := d.Submit(s.Token, SubmitRequest{Program: payload(t, 50), Class: sched.ClassDev})
		var rej *RejectedError
		if !errors.As(err, &rej) {
			t.Fatalf("submission %d not shed: %v", i, err)
		}
		ids = append(ids, rej.Job.ID)
	}
	if st := d.AdminStatus(); st.Rejected != 10 {
		t.Fatalf("lifetime rejected = %d, want 10", st.Rejected)
	}
	// Only the newest 3 records remain queryable; older ones are pruned.
	for _, id := range ids[len(ids)-3:] {
		if _, err := d.JobStatus(s.Token, id); err != nil {
			t.Fatalf("recent rejected record %s pruned: %v", id, err)
		}
	}
	for _, id := range ids[:len(ids)-3] {
		if _, err := d.JobStatus(s.Token, id); err == nil {
			t.Fatalf("old rejected record %s not pruned", id)
		}
	}
	// The session's job list is pruned with the records: one accepted job
	// plus at most RejectedHistory rejected IDs.
	if n := len(s.Jobs); n != 4 {
		t.Fatalf("session job list has %d entries, want 4 (1 accepted + 3 retained rejects)", n)
	}
}

// brokenPolicy returns a fixed decision regardless of the request —
// exercising the daemon's Decision-contract enforcement.
type brokenPolicy struct{ dec admission.Decision }

func (b brokenPolicy) Name() string                                               { return "broken" }
func (b brokenPolicy) Admit(admission.Request, admission.View) admission.Decision { return b.dec }

// TestAdmissionDecisionContract: malformed decisions from custom policies
// fail loudly instead of silently re-classing jobs.
func TestAdmissionDecisionContract(t *testing.T) {
	cases := []admission.Decision{
		// Accepted with the Class field left at its zero value (ClassDev).
		{Outcome: admission.Accepted},
		// Downgrade that is actually an upgrade.
		{Outcome: admission.Downgraded, Class: sched.ClassProduction},
		// Unknown outcome string.
		{Outcome: "waitlisted", Class: sched.ClassTest},
	}
	for _, dec := range cases {
		env, _ := newAdmissionEnv(t, 1, brokenPolicy{dec: dec})
		s, err := env.d.OpenSession("alice")
		if err != nil {
			t.Fatal(err)
		}
		j, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 2), Class: sched.ClassTest})
		if err == nil {
			t.Fatalf("decision %+v accepted; job ran at class %s", dec, j.Class)
		}
	}
}

// TestOrderPolicyConfig covers the queueing stage's policy switch.
func TestOrderPolicyConfig(t *testing.T) {
	for _, name := range []string{"fifo", "fair-share", "shortest-first"} {
		o, err := NewOrder(name)
		if err != nil {
			t.Fatal(err)
		}
		if o.Name() != name {
			t.Fatalf("order %q reports %q", name, o.Name())
		}
	}
	if _, err := NewOrder("lifo"); err == nil {
		t.Fatal("unknown order accepted")
	}
	clk := simclock.New()
	dev, err := device.New(device.Config{Clock: clk, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	order, _ := NewOrder("fair-share")
	if _, err := NewDaemon(Config{Device: dev, Clock: clk, Order: order, ShortestFirst: true}); err == nil {
		t.Fatal("Order combined with ShortestFirst accepted")
	}
	d, err := NewDaemon(Config{Device: dev, Clock: clk, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	if d.OrderName() != "fair-share" || d.AdmissionName() != "accept-all" {
		t.Fatalf("policy names = %s/%s", d.OrderName(), d.AdmissionName())
	}
}
