package daemon

// The submit→dispatch path is an explicit four-stage pipeline, each stage a
// pluggable policy behind its own interface:
//
//	submission
//	    │
//	    ▼
//	[1] admission   admission.Policy — who enters the system, at what class
//	    │               (accept-all, queue-depth, token-bucket, slo-guard;
//	    │                rejected jobs terminate here with a reason)
//	    ▼
//	[2] routing     Router — which partition
//	    │               (round-robin, least-loaded, class-affinity; pins skip
//	    │                the router but never the door)
//	    ▼
//	[3] queueing    OrderPolicy over sched.ClassQueue — what order within
//	    │               the partition (fifo, fair-share, shortest-first;
//	    │                class priority is fixed, the order acts within class)
//	    ▼
//	[4] dispatch    per-partition dispatch loop — when to run, whom to
//	                    preempt (production preempts lower classes; serial
//	                    per device, concurrent across the fleet)
//
// Stages 2–4 were already independent policy axes; stage 1 closes the loop:
// the SLO signals dispatch produces (waits, slowdowns) feed back into
// admission, which is the only stage that can act *before* overload damages
// production latency. Submit in daemon.go walks the stages in order.

import (
	"fmt"
	"time"

	"hpcqc/internal/admission"
	"hpcqc/internal/sched"
	"hpcqc/internal/telemetry"
)

// --- queueing stage ---

// OrderPolicy is the queueing stage's pluggable within-class order: it
// removes the next item to dispatch from a partition queue. Class priority
// is owned by sched.ClassQueue itself; an order only chooses among items of
// the highest non-empty class.
type OrderPolicy interface {
	// Name identifies the order for status reports and sweep axes.
	Name() string
	// Pop removes the next item. usage lazily supplies the per-user
	// accumulated QPU-seconds snapshot; orders that do not need it must not
	// call it (it takes the daemon's accounting lock).
	Pop(q *sched.ClassQueue, usage func() map[string]float64) *sched.Item
}

// fifoOrder is plain arrival order within a class.
type fifoOrder struct{}

func (fifoOrder) Name() string { return "fifo" }
func (fifoOrder) Pop(q *sched.ClassQueue, _ func() map[string]float64) *sched.Item {
	return q.Pop()
}

// fairShareOrder runs the least-served user first within a class (FIFO on
// ties) — the "fairer resource sharing" extension the paper's discussion
// names.
type fairShareOrder struct{}

func (fairShareOrder) Name() string { return "fair-share" }
func (fairShareOrder) Pop(q *sched.ClassQueue, usage func() map[string]float64) *sched.Item {
	served := usage()
	return q.PopBy(func(a, b *sched.Item) bool {
		ua := served[a.Payload.(*Job).User]
		ub := served[b.Payload.(*Job).User]
		if ua != ub {
			return ua < ub
		}
		return a.Enqueued < b.Enqueued
	})
}

// shortestFirstOrder orders by the expected QPU duration hint (§3.5),
// shortest first, FIFO on ties.
type shortestFirstOrder struct{}

func (shortestFirstOrder) Name() string { return "shortest-first" }
func (shortestFirstOrder) Pop(q *sched.ClassQueue, _ func() map[string]float64) *sched.Item {
	return q.PopBy(sched.ShortestExpectedFirst)
}

// orderComparator is the composition hook between the queueing and priority
// axes: an order that can state its policy as a pairwise comparator lets a
// non-constant PriorityPolicy compose with it — the priority score decides,
// and the order's comparator breaks score ties. All built-in orders
// implement it; a custom OrderPolicy that does not falls back to FIFO
// tie-breaking under a non-constant priority.
type orderComparator interface {
	// less returns the order's within-class comparator. usage is the same
	// lazy per-user QPU-seconds snapshot Pop receives; orders that do not
	// need it must not call it.
	less(usage func() map[string]float64) func(a, b *sched.Item) bool
}

func (fifoOrder) less(_ func() map[string]float64) func(a, b *sched.Item) bool {
	return func(a, b *sched.Item) bool { return a.Enqueued < b.Enqueued }
}

func (fairShareOrder) less(usage func() map[string]float64) func(a, b *sched.Item) bool {
	served := usage()
	return func(a, b *sched.Item) bool {
		ua := served[a.Payload.(*Job).User]
		ub := served[b.Payload.(*Job).User]
		if ua != ub {
			return ua < ub
		}
		return a.Enqueued < b.Enqueued
	}
}

func (shortestFirstOrder) less(_ func() map[string]float64) func(a, b *sched.Item) bool {
	return sched.ShortestExpectedFirst
}

// NewOrder builds a within-class order by name ("fifo", "fair-share",
// "shortest-first") — the switch behind the loadgen scheduler axis.
func NewOrder(name string) (OrderPolicy, error) {
	switch name {
	case "fifo", "":
		return fifoOrder{}, nil
	case "fair-share":
		return fairShareOrder{}, nil
	case "shortest-first":
		return shortestFirstOrder{}, nil
	default:
		return nil, fmt.Errorf("daemon: unknown scheduler %q (fifo, fair-share, shortest-first)", name)
	}
}

// --- admission stage ---

// RejectedError is Submit's error when the admission stage sheds the job.
// Job is the terminal rejected record (queryable by its session like any
// other job); Reason is the policy rationale. The HTTP layer renders it as
// 429 Too Many Requests.
type RejectedError struct {
	Job    *Job
	Reason string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("daemon: job %s rejected by admission: %s", e.Job.ID, e.Reason)
}

// admissionView assembles the fleet-wide load snapshot an admission decision
// consults — O(total backlog), one queue-lock acquisition per partition.
// Called under admitMu, so decisions see serialized views; jobs admitted
// concurrently but not yet queued (the routing in-flight window) are not
// visible, which can overshoot depth caps by at most the number of in-flight
// submissions — exact in single-goroutine replays.
func (d *Daemon) admissionView() admission.View {
	view := admission.View{
		Devices: len(d.fleet),
		ByClass: make(map[sched.Class]admission.ClassLoad, 3),
	}
	now := d.cfg.Clock.Now()
	for _, ds := range d.fleet {
		counts, oldest, has, qpu := ds.queue.ClassLoads()
		for c := sched.ClassDev; c <= sched.ClassProduction; c++ {
			load := view.ByClass[c]
			load.Queued += counts[c]
			load.QueuedQPUSeconds += qpu[c].Seconds()
			if has[c] {
				if age := now - oldest[c]; age > load.OldestAge {
					load.OldestAge = age
				}
			}
			view.ByClass[c] = load
		}
		ds.mu.Lock()
		if ds.running != nil {
			view.Running++
		}
		ds.mu.Unlock()
	}
	return view
}

// admitStage runs stage 1 for one submission: build the view (skipped for
// policies that declare themselves Viewless), ask the policy, and count the
// verdict. Decisions are serialized under admitMu so stateful policies
// (token buckets, SLO windows) see submissions in order.
func (d *Daemon) admitStage(req SubmitRequest, user string) admission.Decision {
	d.admitMu.Lock()
	defer d.admitMu.Unlock()
	var view admission.View
	if _, skip := d.admitter.(admission.Viewless); !skip {
		view = d.admissionView()
	}
	dec := d.admitter.Admit(admission.Request{
		Class:              req.Class,
		Pattern:            req.Pattern,
		Source:             defaultSource(req.Source),
		User:               user,
		Pinned:             req.Device != "",
		ExpectedQPUSeconds: req.ExpectedQPUSeconds,
		DeadlineSeconds:    req.DeadlineSeconds,
		Now:                d.cfg.Clock.Now(),
	}, view)
	if d.mAdmission != nil {
		if b := d.bAdmit[req.Class][dec.Outcome]; b != nil {
			b.Inc(1)
		} else {
			d.mAdmission.Inc(telemetry.Labels{
				"class":   req.Class.String(),
				"outcome": string(dec.Outcome),
			}, 1)
		}
	}
	if dec.Outcome == admission.Rejected && d.mAdmissionRejected != nil {
		d.bAdmitRej[req.Class].Inc(1)
	}
	return dec
}

// retryAfterHint is the queue-drain estimate attached to rejections: the
// queued expected-QPU backlog at the rejected class and above, spread evenly
// across the fleet's partitions — roughly how long until the work ahead of a
// resubmission drains, assuming no new arrivals. It is a hint for
// well-behaved retrying clients (the frontier report models them), not a
// guarantee: clamped to [1s, 24h] so it is always a usable backoff.
func (d *Daemon) retryAfterHint(class sched.Class) float64 {
	d.admitMu.Lock()
	view := d.admissionView()
	d.admitMu.Unlock()
	var backlog float64
	for c := class; c <= sched.ClassProduction; c++ {
		backlog += view.ByClass[c].QueuedQPUSeconds
	}
	devs := view.Devices
	if devs < 1 {
		devs = 1
	}
	hint := backlog / float64(devs)
	if hint < 1 {
		hint = 1
	}
	if max := (24 * time.Hour).Seconds(); hint > max {
		hint = max
	}
	return hint
}

// recordRejected creates the terminal rejected job record for a shed
// submission and emits its lifecycle event. The record is owned by the
// session like any accepted job, so status queries and the admin job listing
// surface the rejection, its reason and the retry-after backoff hint.
func (d *Daemon) recordRejected(s *Session, token string, req SubmitRequest, dec admission.Decision, retryAfter float64) *Job {
	now := d.cfg.Clock.Now()
	d.mu.Lock()
	j := &Job{
		ID:                 d.allocJobIDLocked(),
		Session:            token,
		User:               s.User,
		Class:              req.Class,
		RequestedClass:     req.Class,
		Pattern:            req.Pattern,
		Source:             defaultSource(req.Source),
		Pinned:             req.Device != "",
		ExpectedQPUSeconds: req.ExpectedQPUSeconds,
		State:              JobRejected,
		AdmissionOutcome:   string(admission.Rejected),
		AdmissionReason:    dec.Reason,
		RetryAfterSeconds:  retryAfter,
		SubmittedAt:        now,
		FinishedAt:         now,
	}
	d.jobs[j.ID] = j
	s.Jobs = append(s.Jobs, j.ID)
	d.rejectedTotal++
	// Bound the retained records: admission absorbs floods, and the flood's
	// rejection records must not become the new unbounded growth — neither
	// in d.jobs nor in the owning session's job list. Counters, telemetry
	// and lifecycle events still see every shed; only the oldest queryable
	// records go (their IDs then read as unknown jobs).
	d.rejectedIDs = append(d.rejectedIDs, j.ID)
	if n := len(d.rejectedIDs) - d.cfg.RejectedHistory; n > 0 {
		for _, id := range d.rejectedIDs[:n] {
			old := d.jobs[id]
			if old == nil {
				continue
			}
			if os := d.sessions[old.Session]; os != nil {
				os.Jobs = removeJobID(os.Jobs, id)
			}
			delete(d.jobs, id)
		}
		d.rejectedIDs = append(d.rejectedIDs[:0:0], d.rejectedIDs[n:]...)
	}
	if d.mJobs != nil {
		if b := d.bJobs[j.Class][JobRejected]; b != nil {
			b.Inc(1)
		} else {
			d.mJobs.Inc(telemetry.Labels{"class": j.Class.String(), "state": string(JobRejected)}, 1)
		}
	}
	d.notify(JobEventRejected, *j)
	d.mu.Unlock()
	return j
}

// removeJobID filters one ID out of a session's job list in place.
func removeJobID(ids []string, id string) []string {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// feedWait feeds a started job's queue wait back into the admission policy
// (stage 4 → stage 1 feedback). Caller may hold daemon locks; observers are
// leaf code that must not call back in.
func (d *Daemon) feedWait(class sched.Class, wait time.Duration, at time.Duration) {
	if d.admitObserver == nil {
		return
	}
	d.admitObserver.Observe(admission.Signal{
		Class:       class,
		At:          at,
		WaitSeconds: wait.Seconds(),
		Slowdown:    0,
	})
}

// feedSlowdown feeds a completed job's slowdown into the admission policy.
func (d *Daemon) feedSlowdown(class sched.Class, slowdown float64, at time.Duration) {
	if d.admitObserver == nil || slowdown <= 0 {
		return
	}
	d.admitObserver.Observe(admission.Signal{
		Class:       class,
		At:          at,
		WaitSeconds: -1,
		Slowdown:    slowdown,
	})
}
