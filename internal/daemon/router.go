package daemon

import (
	"fmt"
	"sync"

	"hpcqc/internal/device"
	"hpcqc/internal/sched"
)

// Routing and scheduling are independent policy axes over the fleet: a
// Router answers "which partition" at submission time, and each partition's
// sched.ClassQueue answers "what order" on that partition. Keeping the axes
// composable means any router works with any within-class order (FIFO,
// fair-share, shortest-expected-first) without either policy knowing about
// the other.

// DeviceInfo is the router's point-in-time view of one fleet partition.
type DeviceInfo struct {
	// ID is the device's fleet-unique identifier.
	ID string
	// Index is the partition's position in the daemon's fleet slice.
	Index int
	// Status is the device availability state at pick time.
	Status device.Status
	// Queued counts jobs waiting in this partition's class queues.
	Queued int
	// Busy reports whether a job occupies the partition right now.
	Busy bool
	// RunningClass is the class of the occupying job; valid only when Busy.
	RunningClass sched.Class
}

// load is the scalar the least-loaded policy minimizes.
func (i DeviceInfo) load() int {
	n := i.Queued
	if i.Busy {
		n++
	}
	return n
}

// Router picks the target partition for a job. Pick must return an index
// into infos; infos always has at least one entry and is ordered by fleet
// index. Routers should avoid partitions in maintenance when any other is
// available (jobs routed to a maintenance partition wait for it to return).
// Pick may be called concurrently.
type Router interface {
	// Name identifies the policy for logs and status reports.
	Name() string
	// Pick selects the partition index for the job.
	Pick(job *Job, infos []DeviceInfo) int
}

// eligible returns the indices of partitions not in maintenance, or every
// index when the whole fleet is down (the job then waits out the window,
// matching single-device semantics).
func eligible(infos []DeviceInfo) []int {
	out := make([]int, 0, len(infos))
	for i, info := range infos {
		if info.Status != device.StatusMaintenance {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		for i := range infos {
			out = append(out, i)
		}
	}
	return out
}

// roundRobinRouter cycles through eligible partitions in submission order.
type roundRobinRouter struct {
	mu   sync.Mutex
	next int
}

// NewRoundRobinRouter spreads submissions evenly across the fleet
// irrespective of load — the cheapest policy, and a fair baseline when jobs
// are similar in size.
func NewRoundRobinRouter() Router { return &roundRobinRouter{} }

func (r *roundRobinRouter) Name() string { return "round-robin" }

func (r *roundRobinRouter) Pick(_ *Job, infos []DeviceInfo) int {
	el := eligible(infos)
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := el[r.next%len(el)]
	r.next++
	return idx
}

// leastLoadedRouter picks the partition with the fewest queued-plus-running
// jobs; ties break to the lowest fleet index for determinism.
type leastLoadedRouter struct{}

// NewLeastLoadedRouter balances by instantaneous backlog — the default
// policy, and the right one under heterogeneous job sizes.
func NewLeastLoadedRouter() Router { return leastLoadedRouter{} }

func (leastLoadedRouter) Name() string { return "least-loaded" }

func (leastLoadedRouter) Pick(_ *Job, infos []DeviceInfo) int {
	el := eligible(infos)
	best := el[0]
	for _, i := range el[1:] {
		if infos[i].load() < infos[best].load() {
			best = i
		}
	}
	return best
}

// classAffinityRouter gives each priority class a home partition so
// production traffic is isolated from dev churn: production jobs land on
// partition 0, test on 1, dev on 2. Fleets smaller than the class count
// spill the overflow classes across the non-production partitions (never
// back onto partition 0, which would defeat the isolation), and a home in
// maintenance falls back to the least-loaded eligible partition.
//
// Saturation spill: a non-production job whose home partition is saturated
// (busy with backlog, load ≥ 2) overflows to the lowest-index completely idle
// non-home partition, excluding partition 0 — trading a little isolation for
// wait time only when there is provably idle capacity. Production never
// spills: it preempts on its home, and keeping it on partition 0 is the
// isolation the policy exists for.
type classAffinityRouter struct{}

// NewClassAffinityRouter isolates classes onto dedicated partitions, trading
// some load balance for fewer cross-class preemptions.
func NewClassAffinityRouter() Router { return classAffinityRouter{} }

func (classAffinityRouter) Name() string { return "class-affinity" }

func (classAffinityRouter) Pick(j *Job, infos []DeviceInfo) int {
	home := int(sched.ClassProduction - j.Class)
	if home < 0 {
		// Out-of-range classes (possible for direct Pick callers; Submit
		// validates before routing) fall back to load balancing.
		return leastLoadedRouter{}.Pick(j, infos)
	}
	if home < len(infos) {
		if infos[home].Status == device.StatusMaintenance {
			return leastLoadedRouter{}.Pick(j, infos)
		}
		if j.Class != sched.ClassProduction && infos[home].load() >= 2 {
			for i := 1; i < len(infos); i++ {
				if i == home {
					continue
				}
				if infos[i].Status != device.StatusMaintenance && infos[i].load() == 0 {
					return i
				}
			}
		}
		return home
	}
	// Overflow class on a small fleet: least-loaded among the
	// non-production partitions, keeping partition 0 clear for production.
	best := -1
	for i := 1; i < len(infos); i++ {
		if infos[i].Status == device.StatusMaintenance {
			continue
		}
		if best == -1 || infos[i].load() < infos[best].load() {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	return leastLoadedRouter{}.Pick(j, infos)
}

// NewRouter builds a router by policy name ("round-robin", "least-loaded",
// "class-affinity") — the switch behind qcsd's -router flag.
func NewRouter(policy string) (Router, error) {
	switch policy {
	case "round-robin":
		return NewRoundRobinRouter(), nil
	case "least-loaded", "":
		return NewLeastLoadedRouter(), nil
	case "class-affinity":
		return NewClassAffinityRouter(), nil
	default:
		return nil, fmt.Errorf("daemon: unknown router policy %q (round-robin, least-loaded, class-affinity)", policy)
	}
}
