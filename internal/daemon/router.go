package daemon

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"hpcqc/internal/device"
	"hpcqc/internal/qir"
	"hpcqc/internal/sched"
)

// Routing and scheduling are independent policy axes over the fleet: a
// Router answers "which partition" at submission time, and each partition's
// sched.ClassQueue answers "what order" on that partition. Keeping the axes
// composable means any router works with any within-class order (FIFO,
// fair-share, shortest-expected-first) without either policy knowing about
// the other.
//
// Since the calibration-affinity work, every router is a preset over one
// weighted multi-scorer core: per pick, each configured scorer grades every
// eligible partition into [0, 1], the grades are combined with normalized
// weights, and the highest combined score wins (ties break to the lowest
// fleet index, so picks are deterministic). The historical single-policy
// routers are single-scorer presets with weight 1 and keep their names and
// exact pick sequences; the parameterized "affinity" router blends the load,
// cache-affinity and capability/class scorers with configurable weights.

// DeviceInfo is the router's point-in-time view of one fleet partition.
type DeviceInfo struct {
	// ID is the device's fleet-unique identifier.
	ID string
	// Index is the partition's position in the daemon's fleet slice.
	Index int
	// Status is the device availability state at pick time.
	Status device.Status
	// Queued counts jobs waiting in this partition's class queues.
	Queued int
	// Busy reports whether a job occupies the partition right now.
	Busy bool
	// RunningClass is the class of the occupying job; valid only when Busy.
	RunningClass sched.Class

	// cache is the partition's program cache (nil when disabled) — the
	// affinity scorer's O(1) warm-set probe. The daemon fills it; probes are
	// side-effect-free, so scoring never perturbs cache state.
	cache *progLRU
	// spec points at the partition's immutable device spec, the capability
	// scorer's validation target. The daemon fills it; nil skips the check.
	spec *qir.DeviceSpec
}

// load is the scalar the least-loaded policy minimizes.
func (i DeviceInfo) load() int {
	n := i.Queued
	if i.Busy {
		n++
	}
	return n
}

// Router picks the target partition for a job. Pick must return an index
// into infos; infos always has at least one entry and is ordered by fleet
// index. Routers should avoid partitions in maintenance when any other is
// available (jobs routed to a maintenance partition wait for it to return).
// Pick may be called concurrently.
type Router interface {
	// Name identifies the policy for logs and status reports.
	Name() string
	// Pick selects the partition index for the job.
	Pick(job *Job, infos []DeviceInfo) int
}

// eligibleInto fills buf with the indices of partitions not in maintenance,
// or every index when the whole fleet is down (the job then waits out the
// window, matching single-device semantics). Reusing the caller's buffer
// keeps Pick allocation-free on the dispatch hot path.
func eligibleInto(buf []int, infos []DeviceInfo) []int {
	buf = buf[:0]
	for i, info := range infos {
		if info.Status != device.StatusMaintenance {
			buf = append(buf, i)
		}
	}
	if len(buf) == 0 {
		for i := range infos {
			buf = append(buf, i)
		}
	}
	return buf
}

// scorer grades every eligible partition for a job into out (aligned with
// el; higher is better, values in [0, 1]). score is called exactly once per
// Pick, which is what lets the round-robin scorer keep rotation state.
type scorer interface {
	name() string
	score(j *Job, infos []DeviceInfo, el []int, out []float64)
}

// leastLoadedPick is the shared load-balancing fallback: minimum load over
// the eligible set, ties to the lowest fleet index.
func leastLoadedPick(infos []DeviceInfo, el []int) int {
	best := el[0]
	for _, i := range el[1:] {
		if infos[i].load() < infos[best].load() {
			best = i
		}
	}
	return best
}

// loadScorer grades by instantaneous backlog: score 1/(1+load), so an idle
// partition scores 1 and scores decay toward 0 as the queue grows. Argmax
// with lowest-index ties reproduces the classic least-loaded pick exactly.
type loadScorer struct{}

func (loadScorer) name() string { return "load" }

func (loadScorer) score(_ *Job, infos []DeviceInfo, el []int, out []float64) {
	for k, i := range el {
		out[k] = 1.0 / (1.0 + float64(infos[i].load()))
	}
}

// affinityScorer grades by program-cache warmth: 1 when the partition's
// cache holds the job's program fingerprint, else 0. With caching disabled
// (nil cache or no fingerprint) every partition scores 0 and the scorer is
// inert. The probe is an O(1) map lookup per partition — no scans.
type affinityScorer struct{}

func (affinityScorer) name() string { return "affinity" }

func (affinityScorer) score(j *Job, infos []DeviceInfo, el []int, out []float64) {
	for k, i := range el {
		if infos[i].cache.contains(j.progHash) {
			out[k] = 1
		} else {
			out[k] = 0
		}
	}
}

// capScorer is the capability/class grade: a partition whose spec cannot run
// the job's program scores 0 (heterogeneous-fleet guard, memoized through
// qir.ValidateCached so the probe is a map hit); a capable partition scores
// 0.5, raised to 1.0 on the job's class-home partition (production → 0,
// test → 1, dev → 2 — the class-affinity isolation prior).
type capScorer struct{}

func (capScorer) name() string { return "cap" }

func (capScorer) score(j *Job, infos []DeviceInfo, el []int, out []float64) {
	home := -1
	if j != nil {
		if h := int(sched.ClassProduction - j.Class); h >= 0 && h < len(infos) {
			home = h
		}
	}
	for k, i := range el {
		if j != nil && j.prog != nil && infos[i].spec != nil &&
			qir.ValidateCached(j.prog, infos[i].spec) != nil {
			out[k] = 0
			continue
		}
		if i == home {
			out[k] = 1
		} else {
			out[k] = 0.5
		}
	}
}

// roundRobinScorer rotates a full score across the eligible set in pick
// order — the stateful scorer behind the round-robin preset. Relies on the
// one-score-call-per-Pick contract to advance exactly once per job.
type roundRobinScorer struct {
	next int
}

func (*roundRobinScorer) name() string { return "round-robin" }

func (r *roundRobinScorer) score(_ *Job, _ []DeviceInfo, el []int, out []float64) {
	for k := range el {
		out[k] = 0
	}
	out[r.next%len(el)] = 1
	r.next++
}

// classHomeScorer encodes the class-affinity placement rules as a one-hot
// grade: the partition the rules choose scores 1, everything else 0. The
// rules are deliberately rule-shaped rather than a smooth formula — spill
// only to provably idle capacity, never back onto partition 0 — so the
// scorer computes the rule pick and one-hots it, which makes the policy
// composable with the other scorers without changing its standalone
// behavior one bit.
//
// The rules (unchanged from the pre-scorer classAffinityRouter): each class
// has a home partition (production → 0, test → 1, dev → 2) so production
// traffic is isolated from dev churn. Fleets smaller than the class count
// spill the overflow classes across the non-production partitions (never
// back onto partition 0, which would defeat the isolation), and a home in
// maintenance falls back to the least-loaded eligible partition.
//
// Saturation spill: a non-production job whose home partition is saturated
// (busy with backlog, load ≥ 2) overflows to the lowest-index completely idle
// non-home partition, excluding partition 0 — trading a little isolation for
// wait time only when there is provably idle capacity. Production never
// spills: it preempts on its home, and keeping it on partition 0 is the
// isolation the policy exists for.
type classHomeScorer struct{}

func (classHomeScorer) name() string { return "class" }

func (classHomeScorer) score(j *Job, infos []DeviceInfo, el []int, out []float64) {
	target := classHomePick(j, infos, el)
	for k, i := range el {
		if i == target {
			out[k] = 1
		} else {
			out[k] = 0
		}
	}
}

// classHomePick applies the class-affinity rules over the eligible set.
func classHomePick(j *Job, infos []DeviceInfo, el []int) int {
	home := int(sched.ClassProduction - j.Class)
	if home < 0 {
		// Out-of-range classes (possible for direct Pick callers; Submit
		// validates before routing) fall back to load balancing.
		return leastLoadedPick(infos, el)
	}
	if home < len(infos) {
		if infos[home].Status == device.StatusMaintenance {
			return leastLoadedPick(infos, el)
		}
		if j.Class != sched.ClassProduction && infos[home].load() >= 2 {
			for i := 1; i < len(infos); i++ {
				if i == home {
					continue
				}
				if infos[i].Status != device.StatusMaintenance && infos[i].load() == 0 {
					return i
				}
			}
		}
		return home
	}
	// Overflow class on a small fleet: least-loaded among the
	// non-production partitions, keeping partition 0 clear for production.
	best := -1
	for i := 1; i < len(infos); i++ {
		if infos[i].Status == device.StatusMaintenance {
			continue
		}
		if best == -1 || infos[i].load() < infos[best].load() {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	return leastLoadedPick(infos, el)
}

// weightedRouter is the multi-scorer core every routing policy is a preset
// of. Pick grades the eligible partitions with each positively-weighted
// scorer, combines the grades with the normalized weights, and returns the
// argmax — ties to the lowest fleet index, so the pick sequence is a pure
// function of the (job, fleet-view) sequence. The scratch buffers are reused
// across picks under the mutex, keeping the hot path allocation-free.
type weightedRouter struct {
	label   string
	scorers []scorer
	weights []float64 // same length as scorers, normalized to sum 1

	mu  sync.Mutex
	el  []int
	buf []float64
	acc []float64
}

// newWeightedRouter normalizes the weights (dropping nothing — zero-weight
// scorers are kept but skipped per pick) and rejects non-positive totals.
func newWeightedRouter(label string, scorers []scorer, weights []float64) (*weightedRouter, error) {
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("daemon: router %q: negative weight %g for scorer %q", label, w, scorers[i].name())
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("daemon: router %q: at least one scorer weight must be positive", label)
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
	}
	return &weightedRouter{label: label, scorers: scorers, weights: norm}, nil
}

func (r *weightedRouter) Name() string { return r.label }

func (r *weightedRouter) Pick(j *Job, infos []DeviceInfo) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.el = eligibleInto(r.el, infos)
	el := r.el
	if cap(r.acc) < len(el) {
		r.acc = make([]float64, len(el))
		r.buf = make([]float64, len(el))
	}
	acc := r.acc[:len(el)]
	buf := r.buf[:len(el)]
	for k := range acc {
		acc[k] = 0
	}
	for si, s := range r.scorers {
		w := r.weights[si]
		if w == 0 {
			continue
		}
		s.score(j, infos, el, buf)
		for k := range el {
			acc[k] += w * buf[k]
		}
	}
	best := 0
	for k := 1; k < len(el); k++ {
		if acc[k] > acc[best] {
			best = k
		}
	}
	return el[best]
}

// NewRoundRobinRouter spreads submissions evenly across the fleet
// irrespective of load — the cheapest policy, and a fair baseline when jobs
// are similar in size.
func NewRoundRobinRouter() Router {
	r, _ := newWeightedRouter("round-robin", []scorer{&roundRobinScorer{}}, []float64{1})
	return r
}

// NewLeastLoadedRouter balances by instantaneous backlog — the default
// policy, and the right one under heterogeneous job sizes.
func NewLeastLoadedRouter() Router {
	r, _ := newWeightedRouter("least-loaded", []scorer{loadScorer{}}, []float64{1})
	return r
}

// NewClassAffinityRouter isolates classes onto dedicated partitions, trading
// some load balance for fewer cross-class preemptions.
func NewClassAffinityRouter() Router {
	r, _ := newWeightedRouter("class-affinity", []scorer{classHomeScorer{}}, []float64{1})
	return r
}

// Default affinity-router weights: load still dominates (idle capacity beats
// warmth when the spread is large), warmth breaks backlog near-ties (a 0.3
// bonus outweighs the load-score gap between, say, 3 and 5 queued jobs), and
// the capability/class grade is a thin prior.
const (
	defaultAffinityLoadWeight = 0.6
	defaultAffinityWarmWeight = 0.3
	defaultAffinityCapWeight  = 0.1
)

// NewAffinityRouter blends the load, cache-affinity and capability/class
// scorers with the given weights (each ≥ 0, at least one positive; they are
// normalized internally). label becomes the router's reported name.
func NewAffinityRouter(label string, load, warm, capability float64) (Router, error) {
	return newWeightedRouter(label,
		[]scorer{loadScorer{}, affinityScorer{}, capScorer{}},
		[]float64{load, warm, capability})
}

// routerUsage is the catalogue NewRouter errors point at.
const routerUsage = "round-robin, least-loaded, class-affinity, affinity[:load=W:affinity=W:cap=W]"

// NewRouter builds a router by policy name — the switch behind qcsd's
// -router flag and the sweep axis values. The three classic names take no
// parameters. "affinity" accepts colon-separated key=value weights for its
// three scorers (load, affinity, cap), e.g.
// "affinity:load=0.6:affinity=0.3:cap=0.1"; omitted keys keep the defaults,
// and the full spelling is preserved as the router's name so reports stay
// self-describing.
func NewRouter(policy string) (Router, error) {
	base, params, hasParams := strings.Cut(policy, ":")
	switch base {
	case "round-robin":
		if hasParams {
			return nil, fmt.Errorf("daemon: router %q takes no parameters", base)
		}
		return NewRoundRobinRouter(), nil
	case "least-loaded", "":
		if hasParams {
			return nil, fmt.Errorf("daemon: router %q takes no parameters", base)
		}
		return NewLeastLoadedRouter(), nil
	case "class-affinity":
		if hasParams {
			return nil, fmt.Errorf("daemon: router %q takes no parameters", base)
		}
		return NewClassAffinityRouter(), nil
	case "affinity":
		load, warm, capability := defaultAffinityLoadWeight, defaultAffinityWarmWeight, defaultAffinityCapWeight
		if hasParams {
			for _, kv := range strings.Split(params, ":") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("daemon: router affinity: parameter %q is not key=value", kv)
				}
				w, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("daemon: router affinity: weight %s=%q is not a number", key, val)
				}
				switch key {
				case "load":
					load = w
				case "affinity":
					warm = w
				case "cap":
					capability = w
				default:
					return nil, fmt.Errorf("daemon: router affinity: unknown parameter %q (load, affinity, cap)", key)
				}
			}
		}
		return NewAffinityRouter(policy, load, warm, capability)
	default:
		return nil, fmt.Errorf("daemon: unknown router policy %q (%s)", policy, routerUsage)
	}
}
