package daemon

import (
	"math"
	"strings"
	"testing"
	"time"

	"hpcqc/internal/device"
	"hpcqc/internal/qir"
	"hpcqc/internal/sched"
	"hpcqc/internal/simclock"
	"hpcqc/internal/telemetry"
)

// testEnv is a daemon wired to a device on a shared simclock.
type testEnv struct {
	clk *simclock.Clock
	dev *device.Device
	d   *Daemon
	reg *telemetry.Registry
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	clk := simclock.New()
	reg := telemetry.NewRegistry()
	dev, err := device.New(device.Config{Clock: clk, Seed: 11, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(Config{
		Device:           dev,
		Clock:            clk,
		AdminToken:       "admin-secret",
		EnablePreemption: true,
		Registry:         reg,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{clk: clk, dev: dev, d: d, reg: reg}
}

func payload(t *testing.T, shots int) []byte {
	t.Helper()
	omega := 2 * math.Pi
	tPi := math.Pi / omega * 1000
	seq := qir.NewAnalogSequence(qir.LinearRegister("r", 2, 20))
	seq.Add(qir.GlobalRydberg, qir.Pulse{
		Amplitude: qir.ConstantWaveform{Dur: tPi, Val: omega},
		Detuning:  qir.ConstantWaveform{Dur: tPi, Val: 0},
	})
	raw, err := qir.NewAnalogProgram(seq, shots).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestNewDaemonValidation(t *testing.T) {
	if _, err := NewDaemon(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestSessionLifecycle(t *testing.T) {
	env := newEnv(t)
	s, err := env.d.OpenSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	if s.Token == "" || s.User != "alice" {
		t.Fatalf("session = %+v", s)
	}
	if _, err := env.d.OpenSession(""); err == nil {
		t.Fatal("empty user accepted")
	}
	if err := env.d.CloseSession(s.Token); err != nil {
		t.Fatal(err)
	}
	if err := env.d.CloseSession(s.Token); err == nil {
		t.Fatal("double close accepted")
	}
	// Tokens are unique.
	a, _ := env.d.OpenSession("a")
	b, _ := env.d.OpenSession("b")
	if a.Token == b.Token {
		t.Fatal("duplicate tokens")
	}
}

func TestSubmitAndComplete(t *testing.T) {
	env := newEnv(t)
	s, _ := env.d.OpenSession("alice")
	j, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 20), Class: sched.ClassProduction})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != JobRunning {
		t.Fatalf("state = %s (idle device dispatches immediately)", j.State)
	}
	env.clk.Advance(25 * time.Second)
	got, err := env.d.JobStatus(s.Token, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobCompleted {
		t.Fatalf("state = %s", got.State)
	}
	raw, err := env.d.JobResult(s.Token, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "counts") {
		t.Fatalf("result = %s", raw)
	}
}

func TestSubmitValidatesProgramEarly(t *testing.T) {
	env := newEnv(t)
	s, _ := env.d.OpenSession("alice")
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: []byte("junk"), Class: sched.ClassDev}); err == nil {
		t.Fatal("junk program accepted")
	}
	// Valid JSON, invalid program (digital on analog device).
	raw, _ := qir.NewDigitalProgram(qir.NewCircuit(2).H(0), 10).MarshalJSON()
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: raw, Class: sched.ClassDev}); err == nil {
		t.Fatal("digital program accepted by analog daemon")
	}
	if _, err := env.d.Submit("bogus-token", SubmitRequest{Program: payload(t, 5), Class: sched.ClassDev}); err == nil {
		t.Fatal("invalid session accepted")
	}
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 5), Class: sched.Class(9)}); err == nil {
		t.Fatal("invalid class accepted")
	}
}

func TestPriorityOrderAcrossSessions(t *testing.T) {
	env := newEnv(t)
	alice, _ := env.d.OpenSession("alice")
	bob, _ := env.d.OpenSession("bob")
	// Fill the device with a production job, then queue dev before prod.
	env.d.Submit(alice.Token, SubmitRequest{Program: payload(t, 50), Class: sched.ClassProduction})
	devJob, _ := env.d.Submit(bob.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassDev})
	prodJob, _ := env.d.Submit(alice.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassProduction})
	env.clk.Advance(55 * time.Second) // first job done; prod should start, not dev
	p, _ := env.d.JobStatus(alice.Token, prodJob.ID)
	dv, _ := env.d.JobStatus(bob.Token, devJob.ID)
	if p.State != JobRunning {
		t.Fatalf("production job = %s", p.State)
	}
	if dv.State != JobQueued {
		t.Fatalf("dev job = %s", dv.State)
	}
}

func TestProductionPreemptsRunningDev(t *testing.T) {
	env := newEnv(t)
	bob, _ := env.d.OpenSession("bob")
	alice, _ := env.d.OpenSession("alice")
	devJob, _ := env.d.Submit(bob.Token, SubmitRequest{Program: payload(t, 500), Class: sched.ClassDev})
	env.clk.Advance(10 * time.Second)
	prodJob, err := env.d.Submit(alice.Token, SubmitRequest{Program: payload(t, 20), Class: sched.ClassProduction})
	if err != nil {
		t.Fatal(err)
	}
	// The production job runs immediately; the dev job is requeued.
	p, _ := env.d.JobStatus(alice.Token, prodJob.ID)
	dv, _ := env.d.JobStatus(bob.Token, devJob.ID)
	if p.State != JobRunning {
		t.Fatalf("production = %s", p.State)
	}
	if dv.State != JobQueued || dv.Preemptions != 1 {
		t.Fatalf("dev = %s preemptions=%d", dv.State, dv.Preemptions)
	}
	// Production finishes; dev restarts and eventually completes.
	env.clk.Advance(21 * time.Second)
	dv, _ = env.d.JobStatus(bob.Token, devJob.ID)
	if dv.State != JobRunning {
		t.Fatalf("dev after production = %s", dv.State)
	}
	env.clk.Advance(501 * time.Second)
	dv, _ = env.d.JobStatus(bob.Token, devJob.ID)
	if dv.State != JobCompleted {
		t.Fatalf("dev final = %s", dv.State)
	}
	if env.d.AdminStatus().Preemptions != 1 {
		t.Fatalf("preemptions = %d", env.d.AdminStatus().Preemptions)
	}
}

func TestNoPreemptionWhenDisabled(t *testing.T) {
	clk := simclock.New()
	dev, _ := device.New(device.Config{Clock: clk, Seed: 2})
	d, _ := NewDaemon(Config{Device: dev, Clock: clk, AdminToken: "x", EnablePreemption: false})
	bob, _ := d.OpenSession("bob")
	alice, _ := d.OpenSession("alice")
	devJob, _ := d.Submit(bob.Token, SubmitRequest{Program: payload(t, 100), Class: sched.ClassDev})
	prodJob, _ := d.Submit(alice.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassProduction})
	p, _ := d.JobStatus(alice.Token, prodJob.ID)
	dv, _ := d.JobStatus(bob.Token, devJob.ID)
	if p.State != JobQueued || dv.State != JobRunning {
		t.Fatalf("states: prod=%s dev=%s", p.State, dv.State)
	}
}

func TestCancelJobOwnership(t *testing.T) {
	env := newEnv(t)
	alice, _ := env.d.OpenSession("alice")
	bob, _ := env.d.OpenSession("bob")
	j, _ := env.d.Submit(alice.Token, SubmitRequest{Program: payload(t, 100), Class: sched.ClassDev})
	if err := env.d.CancelJob(bob.Token, j.ID, false); err == nil {
		t.Fatal("cross-session cancel accepted")
	}
	if err := env.d.CancelJob(alice.Token, j.ID, false); err != nil {
		t.Fatal(err)
	}
	got, _ := env.d.JobStatus(alice.Token, j.ID)
	if got.State != JobCancelled {
		t.Fatalf("state = %s", got.State)
	}
	if err := env.d.CancelJob(alice.Token, j.ID, false); err == nil {
		t.Fatal("double cancel accepted")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	env := newEnv(t)
	s, _ := env.d.OpenSession("alice")
	env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 100), Class: sched.ClassDev})
	queued, _ := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassDev})
	if err := env.d.CancelJob(s.Token, queued.ID, false); err != nil {
		t.Fatal(err)
	}
	got, _ := env.d.JobStatus(s.Token, queued.ID)
	if got.State != JobCancelled {
		t.Fatalf("state = %s", got.State)
	}
}

func TestCloseSessionCancelsQueuedJobs(t *testing.T) {
	env := newEnv(t)
	s, _ := env.d.OpenSession("alice")
	running, _ := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 100), Class: sched.ClassDev})
	queued, _ := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassDev})
	env.d.CloseSession(s.Token)
	// Queued cancelled, running untouched.
	jobs := env.d.ListJobs()
	states := map[string]JobState{}
	for _, j := range jobs {
		states[j.ID] = j.State
	}
	if states[queued.ID] != JobCancelled {
		t.Fatalf("queued = %s", states[queued.ID])
	}
	if states[running.ID] != JobRunning {
		t.Fatalf("running = %s", states[running.ID])
	}
}

func TestJobStatusIsolation(t *testing.T) {
	env := newEnv(t)
	alice, _ := env.d.OpenSession("alice")
	bob, _ := env.d.OpenSession("bob")
	j, _ := env.d.Submit(alice.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassDev})
	if _, err := env.d.JobStatus(bob.Token, j.ID); err == nil {
		t.Fatal("cross-session status accepted")
	}
}

func TestAdminStatusAndLowLevel(t *testing.T) {
	env := newEnv(t)
	if env.d.AdminAuthorized("wrong") || !env.d.AdminAuthorized("admin-secret") {
		t.Fatal("admin auth broken")
	}
	s, _ := env.d.OpenSession("alice")
	env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 30), Class: sched.ClassProduction})
	env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassDev})
	rep := env.d.AdminStatus()
	if rep.Sessions != 1 || rep.Running == "" || rep.QueuedByName["dev"] != 1 {
		t.Fatalf("report = %+v", rep)
	}
	// Gated low-level ops: allowlisted pass, others rejected.
	if _, err := env.d.LowLevelOp("recalibrate"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.d.LowLevelOp("qa_check"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.d.LowLevelOp("laser_power_override"); err == nil {
		t.Fatal("non-allowlisted op accepted")
	}
}

func TestLowLevelMaintenanceOps(t *testing.T) {
	clk := simclock.New()
	dev, _ := device.New(device.Config{Clock: clk, Seed: 2})
	d, _ := NewDaemon(Config{
		Device: dev, Clock: clk, AdminToken: "x",
		AllowedLowLevelOps: []string{"maintenance_on", "maintenance_off"},
	})
	if _, err := d.LowLevelOp("maintenance_on"); err != nil {
		t.Fatal(err)
	}
	if dev.Status() != device.StatusMaintenance {
		t.Fatalf("status = %s", dev.Status())
	}
	if _, err := d.LowLevelOp("maintenance_off"); err != nil {
		t.Fatal(err)
	}
	if dev.Status() != device.StatusOnline {
		t.Fatalf("status = %s", dev.Status())
	}
	// Ops outside this site's allowlist are rejected even if implemented.
	if _, err := d.LowLevelOp("recalibrate"); err == nil {
		t.Fatal("recalibrate accepted outside allowlist")
	}
}

func TestDaemonTelemetry(t *testing.T) {
	env := newEnv(t)
	s, _ := env.d.OpenSession("alice")
	env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassProduction})
	env.clk.Advance(15 * time.Second)
	v := env.reg.Get("daemon_jobs_total").Value(telemetry.Labels{"class": "production", "state": "completed"})
	if v != 1 {
		t.Fatalf("jobs_total = %g", v)
	}
	if env.reg.Get("daemon_sessions_active").Value(nil) != 1 {
		t.Fatal("sessions gauge")
	}
	if got := env.reg.Get("daemon_job_wait_seconds").HistogramCount(telemetry.Labels{"class": "production"}); got != 1 {
		t.Fatalf("wait histogram count = %d", got)
	}
	out := env.reg.Expose()
	if !strings.Contains(out, "daemon_jobs_total") || !strings.Contains(out, "qpu_up") {
		t.Fatal("exposition incomplete")
	}
}

func TestMeanWaitByClass(t *testing.T) {
	env := newEnv(t)
	s, _ := env.d.OpenSession("alice")
	env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 60), Class: sched.ClassProduction})
	env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassDev})
	env.clk.Advance(200 * time.Second)
	rep := env.d.AdminStatus()
	if rep.MeanWait["production"] != 0 {
		t.Fatalf("production wait = %s", rep.MeanWait["production"])
	}
	if rep.MeanWait["dev"] < 59*time.Second {
		t.Fatalf("dev wait = %s", rep.MeanWait["dev"])
	}
}

func TestFairShareOrdersWithinClass(t *testing.T) {
	clk := simclock.New()
	dev, _ := device.New(device.Config{Clock: clk, Seed: 51})
	d, _ := NewDaemon(Config{
		Device: dev, Clock: clk, AdminToken: "x",
		EnablePreemption: true, FairShare: true,
	})
	alice, _ := d.OpenSession("alice")
	bob, _ := d.OpenSession("bob")
	// Alice consumes 200 QPU-seconds first.
	hog, _ := d.Submit(alice.Token, SubmitRequest{Program: payload(t, 200), Class: sched.ClassDev})
	clk.Advance(201 * time.Second)
	if st, _ := d.JobStatus(alice.Token, hog.ID); st.State != JobCompleted {
		t.Fatalf("hog = %s", st.State)
	}
	// Occupy the device, then queue alice's job BEFORE bob's.
	d.Submit(alice.Token, SubmitRequest{Program: payload(t, 100), Class: sched.ClassDev})
	aliceJob, _ := d.Submit(alice.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassDev})
	bobJob, _ := d.Submit(bob.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassDev})
	clk.Advance(101 * time.Second) // blocker finishes; fair-share picks next
	a, _ := d.JobStatus(alice.Token, aliceJob.ID)
	b, _ := d.JobStatus(bob.Token, bobJob.ID)
	if b.State != JobRunning {
		t.Fatalf("bob (least-served) = %s, want running", b.State)
	}
	if a.State != JobQueued {
		t.Fatalf("alice (heavy user) = %s, want queued", a.State)
	}
	// Class priority still beats fairness: alice's production job jumps bob's dev queue.
	clk.Advance(11 * time.Second) // bob's job done; alice's dev job running
	prodJob, _ := d.Submit(alice.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassProduction})
	p, _ := d.JobStatus(alice.Token, prodJob.ID)
	if p.State != JobRunning {
		t.Fatalf("production from heavy user = %s, want running via preemption", p.State)
	}
}

func TestFIFOWithoutFairShare(t *testing.T) {
	clk := simclock.New()
	dev, _ := device.New(device.Config{Clock: clk, Seed: 52})
	d, _ := NewDaemon(Config{Device: dev, Clock: clk, AdminToken: "x"})
	alice, _ := d.OpenSession("alice")
	bob, _ := d.OpenSession("bob")
	hog, _ := d.Submit(alice.Token, SubmitRequest{Program: payload(t, 100), Class: sched.ClassDev})
	_ = hog
	aliceJob, _ := d.Submit(alice.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassDev})
	bobJob, _ := d.Submit(bob.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassDev})
	clk.Advance(101 * time.Second)
	a, _ := d.JobStatus(alice.Token, aliceJob.ID)
	b, _ := d.JobStatus(bob.Token, bobJob.ID)
	if a.State != JobRunning || b.State != JobQueued {
		t.Fatalf("FIFO order violated: alice=%s bob=%s", a.State, b.State)
	}
}
