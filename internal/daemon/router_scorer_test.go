package daemon

import (
	"strings"
	"testing"
	"time"

	"hpcqc/internal/device"
	"hpcqc/internal/sched"
	"hpcqc/internal/simclock"
	"hpcqc/internal/telemetry"
)

// onlineFleet builds a DeviceInfo slice with the given per-partition loads
// (expressed as queue depth), all online.
func onlineFleet(loads ...int) []DeviceInfo {
	infos := make([]DeviceInfo, len(loads))
	for i, q := range loads {
		infos[i] = DeviceInfo{ID: "p", Index: i, Status: device.StatusOnline, Queued: q}
	}
	return infos
}

// TestNewRouterErrors: the router factory must reject malformed policy
// strings with actionable errors rather than silently falling back.
func TestNewRouterErrors(t *testing.T) {
	for _, policy := range []string{
		"coin-flip",                        // unknown policy
		"least-loaded:x=1",                 // legacy names take no parameters
		"round-robin:x=1",                  //
		"class-affinity:load=1",            //
		"affinity:bogus=1",                 // unknown weight key
		"affinity:load",                    // not key=value
		"affinity:load=abc",                // weight not a number
		"affinity:load=-1",                 // negative weight
		"affinity:load=0:affinity=0:cap=0", // all-zero weights
	} {
		if _, err := NewRouter(policy); err == nil {
			t.Errorf("NewRouter(%q) accepted", policy)
		}
	}
	// Valid spellings, and the full spelling is the reported name (reports
	// stay self-describing about the weights in force).
	for _, policy := range []string{"affinity", "affinity:load=0.5", "affinity:load=1:affinity=2:cap=3"} {
		r, err := NewRouter(policy)
		if err != nil {
			t.Fatalf("NewRouter(%q): %v", policy, err)
		}
		if r.Name() != policy {
			t.Fatalf("NewRouter(%q).Name() = %q", policy, r.Name())
		}
	}
}

// TestAffinityWeightNormalization: weights are ratios, not magnitudes —
// scaling them all by a constant must not change a single pick.
func TestAffinityWeightNormalization(t *testing.T) {
	a, err := NewRouter("affinity")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRouter("affinity:load=60:affinity=30:cap=10")
	if err != nil {
		t.Fatal(err)
	}
	warm := newProgLRU(4)
	warm.touch(42)
	scenarios := [][]DeviceInfo{
		onlineFleet(0, 0, 0),
		onlineFleet(3, 1, 2),
		onlineFleet(1, 1, 1),
		onlineFleet(0, 5, 0),
	}
	// Warm partition 1 in every scenario so the affinity scorer contributes.
	for _, infos := range scenarios {
		infos[1].cache = warm
		for _, j := range []*Job{{Class: sched.ClassDev}, {Class: sched.ClassProduction, progHash: 42}} {
			if pa, pb := a.Pick(j, infos), b.Pick(j, infos); pa != pb {
				t.Fatalf("scaled weights diverge: %d vs %d on %+v", pa, pb, infos)
			}
		}
	}
}

// TestAffinityZeroWeightDegeneration: zeroing the affinity and capability
// weights must reproduce the least-loaded pick sequence exactly — the blend
// degenerates to its load term.
func TestAffinityZeroWeightDegeneration(t *testing.T) {
	blend, err := NewRouter("affinity:load=1:affinity=0:cap=0")
	if err != nil {
		t.Fatal(err)
	}
	ll := NewLeastLoadedRouter()
	warm := newProgLRU(4)
	warm.touch(7)
	for _, infos := range [][]DeviceInfo{
		onlineFleet(2, 2, 2), // tie → lowest index
		onlineFleet(4, 1, 3),
		onlineFleet(0, 0, 9),
		onlineFleet(5, 4, 4),
	} {
		// Even a warm cache must not matter at weight 0.
		infos[2].cache = warm
		j := &Job{Class: sched.ClassDev, progHash: 7}
		if pb, pl := blend.Pick(j, infos), ll.Pick(j, infos); pb != pl {
			t.Fatalf("zero-weight blend diverges from least-loaded: %d vs %d on %+v", pb, pl, infos)
		}
	}
}

// TestWeightedTieBreakDeterminism: equal combined scores resolve to the
// lowest fleet index, every time — the weighted core inherits the repo-wide
// determinism contract.
func TestWeightedTieBreakDeterminism(t *testing.T) {
	r, err := NewRouter("affinity")
	if err != nil {
		t.Fatal(err)
	}
	// Two partitions, dev job: dev's class home (index 2) is out of range, so
	// every scorer grades the pair identically — a genuine combined-score tie.
	infos := onlineFleet(1, 1)
	for i := 0; i < 10; i++ {
		if idx := r.Pick(&Job{Class: sched.ClassDev}, infos); idx != 0 {
			t.Fatalf("pick %d: tie resolved to %d, want 0", i, idx)
		}
	}
	// On a home-sized fleet the capability prior deliberately breaks the tie
	// toward the class home.
	if idx := r.Pick(&Job{Class: sched.ClassDev}, onlineFleet(1, 1, 1)); idx != 2 {
		t.Fatalf("dev-home tiebreak = %d, want 2", idx)
	}
}

// TestRoundRobinPresetRotation: the scorer-based round-robin preset must
// rotate across the eligible set exactly like the historical router,
// skipping maintenance partitions.
func TestRoundRobinPresetRotation(t *testing.T) {
	rr := NewRoundRobinRouter()
	infos := onlineFleet(0, 0, 0)
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if idx := rr.Pick(&Job{}, infos); idx != w {
			t.Fatalf("pick %d = %d, want %d", i, idx, w)
		}
	}
	// Partition 1 in maintenance: rotation continues over {0, 2}.
	infos[1].Status = device.StatusMaintenance
	seen := map[int]int{}
	for i := 0; i < 4; i++ {
		seen[rr.Pick(&Job{}, infos)]++
	}
	if seen[1] != 0 || seen[0] != 2 || seen[2] != 2 {
		t.Fatalf("maintenance-aware rotation spread = %v", seen)
	}
}

// TestAffinitySteering: warmth breaks backlog ties toward the warm
// partition, but idle capacity still beats warmth under the default weights
// — the blend is a tiebreaker, not a magnet.
func TestAffinitySteering(t *testing.T) {
	r, err := NewRouter("affinity")
	if err != nil {
		t.Fatal(err)
	}
	warm := newProgLRU(4)
	warm.touch(99)
	j := &Job{Class: sched.ClassDev, progHash: 99}

	// Equal backlog: the warm partition wins.
	tied := onlineFleet(1, 1)
	tied[1].cache = warm
	if idx := r.Pick(j, tied); idx != 1 {
		t.Fatalf("equal-load pick = %d, want warm partition 1", idx)
	}
	// Deep backlog on the warm partition: the idle one wins.
	skewed := onlineFleet(0, 9)
	skewed[1].cache = warm
	if idx := r.Pick(j, skewed); idx != 0 {
		t.Fatalf("skewed-load pick = %d, want idle partition 0", idx)
	}
	// A job the cache has never seen gets no pull at all.
	cold := &Job{Class: sched.ClassDev, progHash: 123}
	if idx := r.Pick(cold, tied); idx != 0 {
		t.Fatalf("cold-program pick = %d, want 0 (no affinity pull)", idx)
	}
}

// TestProgramCacheLRU exercises the O(1) cache directly: hit/miss/eviction
// accounting, LRU order under touches, and the side-effect-free probe.
func TestProgramCacheLRU(t *testing.T) {
	c := newProgLRU(2)
	if hit, _ := c.touch(1); hit {
		t.Fatal("empty cache reported a hit")
	}
	if hit, _ := c.touch(2); hit {
		t.Fatal("miss reported as hit")
	}
	if hit, _ := c.touch(1); !hit {
		t.Fatal("warm entry reported as miss")
	}
	// 2 is now LRU; inserting 3 evicts it.
	if hit, evicted := c.touch(3); hit || !evicted {
		t.Fatalf("insert over full cache: hit=%v evicted=%v", hit, evicted)
	}
	if c.contains(2) {
		t.Fatal("evicted entry still present")
	}
	if !c.contains(1) || !c.contains(3) {
		t.Fatal("expected entries missing after eviction")
	}
	// contains is a pure probe: it must not refresh recency. 1 is LRU here,
	// and probing it repeatedly must not save it from the next eviction.
	for i := 0; i < 5; i++ {
		c.contains(1)
	}
	c.touch(4)
	if c.contains(1) {
		t.Fatal("contains() refreshed recency: probed entry survived eviction")
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 4 || st.Evictions != 2 || st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Hash 0 is the reserved empty sentinel: never stored, never counted.
	if hit, _ := c.touch(0); hit {
		t.Fatal("zero hash reported a hit")
	}
	if c.stats().Misses != st.Misses {
		t.Fatal("zero hash perturbed counters")
	}
	// A nil cache (caching disabled) is probe-safe.
	var nilCache *progLRU
	if nilCache.contains(1) {
		t.Fatal("nil cache contains() = true")
	}
}

// TestCacheHotPathAllocs: the replay hot path budget — a warm cache touch
// and a weighted Pick must not allocate.
func TestCacheHotPathAllocs(t *testing.T) {
	c := newProgLRU(8)
	c.touch(5)
	if n := testing.AllocsPerRun(100, func() { c.touch(5) }); n != 0 {
		t.Fatalf("warm touch allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { c.contains(5) }); n != 0 {
		t.Fatalf("contains allocates %.1f/op", n)
	}

	r, err := NewRouter("affinity")
	if err != nil {
		t.Fatal(err)
	}
	infos := onlineFleet(1, 2, 0, 3)
	infos[2].cache = c
	j := &Job{Class: sched.ClassDev, progHash: 5}
	r.Pick(j, infos) // warm the scratch buffers
	if n := testing.AllocsPerRun(100, func() { r.Pick(j, infos) }); n != 0 {
		t.Fatalf("weighted Pick allocates %.1f/op", n)
	}
}

// cacheEnv boots a single-partition daemon with the program cache enabled
// and a registry attached, for counter and stats assertions.
func cacheEnv(t *testing.T, cacheSize int, setup float64) (*fleetEnv, *telemetry.Registry) {
	t.Helper()
	clk := simclock.New()
	fleet, err := device.NewFleet(1, device.Config{Clock: clk, Seed: 31, DriftInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	d, err := NewDaemon(Config{
		Devices: fleet.Devices(), Clock: clk,
		AdminToken: "admin", EnablePreemption: true, Seed: 3,
		ProgramCache: cacheSize, SetupSeconds: setup,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fleetEnv{clk: clk, fleet: fleet, d: d}, reg
}

// TestCacheCountersAndStats: hits, misses and evictions must agree across
// the three reporting surfaces — job annotations, CacheStatsByDevice and the
// registry counters — and the cache-disabled daemon must expose none of them.
func TestCacheCountersAndStats(t *testing.T) {
	env, reg := cacheEnv(t, 1, 2)
	s, err := env.d.OpenSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	submit := func(shots int) string {
		t.Helper()
		j, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, shots), Class: sched.ClassDev})
		if err != nil {
			t.Fatal(err)
		}
		env.drain(t, time.Hour)
		return j.ID
	}
	first := submit(10)  // cold: miss
	second := submit(10) // same program: hit
	third := submit(20)  // different program, capacity 1: miss + eviction

	wantCache := map[string]string{first: "miss", second: "hit", third: "miss"}
	for _, j := range env.d.ListJobs() {
		if want, ok := wantCache[j.ID]; ok && j.Cache != want {
			t.Fatalf("job %s cache annotation = %q, want %q", j.ID, j.Cache, want)
		}
	}

	stats := env.d.CacheStatsByDevice()
	if len(stats) != 1 {
		t.Fatalf("CacheStatsByDevice() has %d entries, want 1", len(stats))
	}
	id := env.fleet.IDs()[0]
	st := stats[id]
	if st == nil || st.Hits != 1 || st.Misses != 2 || st.Evictions != 1 || st.Size != 1 {
		t.Fatalf("device cache stats = %+v", st)
	}
	if st.HitRate < 0.33 || st.HitRate > 0.34 {
		t.Fatalf("hit rate = %g, want 1/3", st.HitRate)
	}

	labels := telemetry.Labels{"device": id}
	for name, want := range map[string]float64{
		"daemon_program_cache_hits_total":      1,
		"daemon_program_cache_misses_total":    2,
		"daemon_program_cache_evictions_total": 1,
	} {
		m := reg.Get(name)
		if m == nil {
			t.Fatalf("metric %s not registered", name)
		}
		if got := m.Value(labels); got != want {
			t.Fatalf("%s = %g, want %g", name, got, want)
		}
	}

	// Cache-less daemon: no annotations, no stats, no metrics — the
	// byte-identity guarantee for existing deployments.
	off, offReg := cacheEnv(t, 0, 0)
	so, err := off.d.OpenSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := off.d.Submit(so.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassDev}); err != nil {
		t.Fatal(err)
	}
	off.drain(t, time.Hour)
	for _, j := range off.d.ListJobs() {
		if j.Cache != "" {
			t.Fatalf("cache-less daemon annotated job: %q", j.Cache)
		}
	}
	if stats := off.d.CacheStatsByDevice(); stats != nil {
		t.Fatalf("cache-less CacheStatsByDevice() = %+v, want nil", stats)
	}
	if strings.Contains(offReg.Expose(), "daemon_program_cache") {
		t.Fatal("cache-less daemon exposes program-cache metrics")
	}
}

// TestCacheConfigValidation: the cache knobs reject nonsense combinations at
// construction time.
func TestCacheConfigValidation(t *testing.T) {
	clk := simclock.New()
	fleet, err := device.NewFleet(1, device.Config{Clock: clk, Seed: 1, DriftInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Devices: fleet.Devices(), Clock: clk, AdminToken: "a", Seed: 1}

	bad := base
	bad.ProgramCache = -1
	if _, err := NewDaemon(bad); err == nil {
		t.Fatal("negative ProgramCache accepted")
	}
	bad = base
	bad.SetupSeconds = -1
	if _, err := NewDaemon(bad); err == nil {
		t.Fatal("negative SetupSeconds accepted")
	}
	bad = base
	bad.SetupSeconds = 5 // without a cache there is nothing to miss
	if _, err := NewDaemon(bad); err == nil {
		t.Fatal("SetupSeconds without ProgramCache accepted")
	}
}
