package daemon

// The priority axis is the fourth pluggable stage knob: where an OrderPolicy
// fixes a static within-class order (arrival, user fairness, duration hint),
// a PriorityPolicy re-scores every queued item at each dispatch tick, so the
// order can *change while jobs wait* — the property deadline urgency and
// anti-starvation aging need and no static comparator can express. The two
// axes compose instead of competing: the score decides, and the order
// policy's comparator breaks score ties, so `slo-urgency × fair-share` means
// "most urgent first, least-served user among equally urgent".
//
// The `constant` policy is the identity element: every item scores the same,
// the tie-break does all the work, and the daemon short-circuits it onto the
// exact legacy OrderPolicy.Pop path so replay reports stay byte-identical to
// a build without the axis (the determinism sweeps gate this).

import (
	"fmt"
	"math"
	"strings"
	"time"

	"hpcqc/internal/sched"
	"hpcqc/internal/workload"
)

// PriorityPolicy is the dynamic-urgency scheduling axis: a per-item score
// recomputed at each dispatch tick. The highest score within the highest
// non-empty class dispatches next; the active OrderPolicy breaks ties.
type PriorityPolicy interface {
	// Name identifies the policy for status reports and sweep axes,
	// including any inline parameters (e.g. "slo-urgency:deadline=120s").
	Name() string
	// Score rates a queued item at sim time now; higher is more urgent.
	// Called under the partition queue lock, once per queued item of the
	// winning class — it must be fast, pure, and must not call back into
	// the daemon or the queue.
	Score(it *sched.Item, now time.Duration) float64
}

// noDeadlineScore sorts items without any resolvable deadline behind every
// item that has one, for the deadline-driven policies. Equal among
// themselves, so the order policy's tie-break takes over.
const noDeadlineScore = -math.MaxFloat64

// constantPriority is the default identity policy: all items score equally,
// leaving the order policy in sole control. The daemon detects it and keeps
// dispatch on the legacy pop path.
type constantPriority struct{}

func (constantPriority) Name() string                              { return "constant" }
func (constantPriority) Score(*sched.Item, time.Duration) float64 { return 0 }

// agePriority scores items by time spent queued — pure anti-starvation: the
// longest-waiting item runs first regardless of how it arrived. Within a
// single class this degrades to seniority order; its value is keeping
// preemption-requeued jobs (whose Enqueued stays the original submit time)
// ahead of younger arrivals.
type agePriority struct{}

func (agePriority) Name() string { return "age" }
func (agePriority) Score(it *sched.Item, now time.Duration) float64 {
	return (now - it.Enqueued).Seconds()
}

// deadlinePriority implements both deadline-driven policies over the same
// deadline resolution: an item's explicit Deadline when it carries one,
// otherwise the per-class fallback contract applied to its enqueue time.
//
//	edf         score = −deadline: classic earliest-deadline-first.
//	slo-urgency score = −slack, slack = deadline − now − expected service:
//	            least-slack-first. Unlike EDF the score keeps rising once a
//	            job is late (slack < 0), and jobs with equal deadlines but
//	            longer service sort ahead — the shape that converts urgency
//	            into deadline hits when service times are heterogeneous.
type deadlinePriority struct {
	label    string
	edf      bool
	fallback map[sched.Class]workload.DeadlineSpec
}

func (p *deadlinePriority) Name() string { return p.label }

// deadline resolves the absolute sim-time deadline for an item, or 0 when
// neither the item nor the class contract provides one.
func (p *deadlinePriority) deadline(it *sched.Item) time.Duration {
	if it.Deadline > 0 {
		return it.Deadline
	}
	if spec, ok := p.fallback[it.Class]; ok {
		if off := spec.Offset(it.ExpectedQPU); off > 0 {
			return it.Enqueued + off
		}
	}
	return 0
}

func (p *deadlinePriority) Score(it *sched.Item, now time.Duration) float64 {
	dl := p.deadline(it)
	if dl <= 0 {
		return noDeadlineScore
	}
	if p.edf {
		return -dl.Seconds()
	}
	return -(dl - now - it.ExpectedQPU).Seconds()
}

// configure applies colon-separated key=value parameters to the fallback
// deadline contracts. `deadline=DUR` replaces every class contract with a
// flat DUR allowance; `production=DUR`, `test=DUR`, `dev=DUR` replace one
// class each (DUR of 0 removes that class's fallback entirely). Explicit
// per-job deadlines always win over any fallback.
func (p *deadlinePriority) configure(params string) error {
	for _, kv := range strings.Split(params, ":") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" {
			return fmt.Errorf("daemon: priority %s: malformed parameter %q (want key=value)", p.label, kv)
		}
		dur, err := time.ParseDuration(val)
		if err != nil || dur < 0 {
			return fmt.Errorf("daemon: priority %s: parameter %s wants a non-negative duration, got %q", p.label, key, val)
		}
		switch key {
		case "deadline":
			for c := range p.fallback {
				p.fallback[c] = workload.DeadlineSpec{Base: dur}
			}
		case "production":
			p.fallback[sched.ClassProduction] = workload.DeadlineSpec{Base: dur}
		case "test":
			p.fallback[sched.ClassTest] = workload.DeadlineSpec{Base: dur}
		case "dev":
			p.fallback[sched.ClassDev] = workload.DeadlineSpec{Base: dur}
		default:
			return fmt.Errorf("daemon: priority %s: unknown parameter %q (deadline, production, test, dev)", p.label, key)
		}
	}
	return nil
}

// NewPriority builds a priority policy by name — the switch behind the
// loadgen priority axis and qcsd's -priority flag. The empty name is the
// constant default; slo-urgency and edf accept inline fallback-deadline
// parameters, e.g. "slo-urgency:deadline=120s" or "edf:production=90s".
// The full parameterized spelling is preserved as the policy's Name.
func NewPriority(name string) (PriorityPolicy, error) {
	base, params, hasParams := strings.Cut(name, ":")
	switch base {
	case "constant", "":
		if hasParams {
			return nil, fmt.Errorf("daemon: priority constant takes no parameters (got %q)", name)
		}
		return constantPriority{}, nil
	case "age":
		if hasParams {
			return nil, fmt.Errorf("daemon: priority age takes no parameters (got %q)", name)
		}
		return agePriority{}, nil
	case "slo-urgency", "edf":
		p := &deadlinePriority{label: name, edf: base == "edf", fallback: workload.DefaultDeadlines()}
		if hasParams {
			if err := p.configure(params); err != nil {
				return nil, err
			}
		}
		return p, nil
	default:
		return nil, fmt.Errorf("daemon: unknown priority %q (constant, age, slo-urgency, edf)", name)
	}
}

// AllPriorities lists the built-in priority policy names, in their canonical
// sweep-axis order.
func AllPriorities() []string {
	return []string{"constant", "age", "slo-urgency", "edf"}
}
