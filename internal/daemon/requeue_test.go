package daemon

import (
	"testing"
	"time"

	"hpcqc/internal/sched"
)

// TestCrossPartitionRequeue exercises the preemption-requeue path: a dev job
// preempted by production while another partition sits idle must be re-routed
// there (through the router) instead of queueing behind its preemptor.
func TestCrossPartitionRequeue(t *testing.T) {
	env := newFleetEnv(t, 2, NewLeastLoadedRouter())
	ids := env.fleet.IDs()
	var events []JobEvent
	env.d.cfg.JobListener = func(ev JobEvent) { events = append(events, ev) }

	s, _ := env.d.OpenSession("ops")
	// Unpinned dev job: least-loaded sends it to partition 0.
	victim, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 400), Class: sched.ClassDev})
	if err != nil {
		t.Fatal(err)
	}
	if victim.Device != ids[0] {
		t.Fatalf("victim routed to %s, want %s", victim.Device, ids[0])
	}
	env.clk.Advance(5 * time.Second)
	// Production lands on the idle partition 1 under least-loaded, so force
	// the collision by pinning it to partition 0.
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 30), Class: sched.ClassProduction, Device: ids[0]}); err != nil {
		t.Fatal(err)
	}
	v, _ := env.d.JobStatus(s.Token, victim.ID)
	if v.Preemptions != 1 {
		t.Fatalf("victim preemptions = %d, want 1", v.Preemptions)
	}
	// The victim must have moved to the idle partition 1 — and with partition
	// 1 free it should already be running again.
	if v.Device != ids[1] {
		t.Fatalf("victim requeued on %s, want cross-partition requeue to %s", v.Device, ids[1])
	}
	if v.State != JobRunning {
		t.Fatalf("victim = %s, want running on the idle partition", v.State)
	}
	var sawRequeue bool
	for _, ev := range events {
		if ev.Type == JobEventRequeued && ev.Job.ID == victim.ID {
			sawRequeue = true
			if ev.Job.Device != ids[1] {
				t.Fatalf("requeue event device = %s, want %s", ev.Job.Device, ids[1])
			}
		}
	}
	if !sawRequeue {
		t.Fatal("no requeued event emitted")
	}
	env.drain(t, time.Hour)
}

// TestCrossPartitionRequeueRespectsPin repeats the collision with a pinned
// victim: pinned jobs must never be moved off their partition.
func TestCrossPartitionRequeueRespectsPin(t *testing.T) {
	env := newFleetEnv(t, 2, NewLeastLoadedRouter())
	ids := env.fleet.IDs()
	s, _ := env.d.OpenSession("ops")
	victim, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 400), Class: sched.ClassDev, Device: ids[0]})
	if err != nil {
		t.Fatal(err)
	}
	env.clk.Advance(5 * time.Second)
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 30), Class: sched.ClassProduction, Device: ids[0]}); err != nil {
		t.Fatal(err)
	}
	v, _ := env.d.JobStatus(s.Token, victim.ID)
	if v.Device != ids[0] || v.State != JobQueued {
		t.Fatalf("pinned victim = %s on %s, want queued on %s", v.State, v.Device, ids[0])
	}
	env.drain(t, time.Hour)
}

// TestRequeueStaysPutWithoutIdleCapacity: when every other partition is busy,
// the preempted job waits on its original partition exactly as before the
// cross-partition requeue existed.
func TestRequeueStaysPutWithoutIdleCapacity(t *testing.T) {
	env := newFleetEnv(t, 2, NewLeastLoadedRouter())
	ids := env.fleet.IDs()
	s, _ := env.d.OpenSession("ops")
	victim, _ := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 400), Class: sched.ClassDev})
	// Occupy partition 1 so there is no idle capacity anywhere.
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 400), Class: sched.ClassDev, Device: ids[1]}); err != nil {
		t.Fatal(err)
	}
	env.clk.Advance(5 * time.Second)
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 30), Class: sched.ClassProduction, Device: ids[0]}); err != nil {
		t.Fatal(err)
	}
	v, _ := env.d.JobStatus(s.Token, victim.ID)
	if v.Device != ids[0] || v.State != JobQueued {
		t.Fatalf("victim = %s on %s, want queued on its original %s", v.State, v.Device, ids[0])
	}
	env.drain(t, 2*time.Hour)
}

// TestRequeueIgnoresLoadBlindPick: when the router's pick lands on a busy
// partition (round-robin rotating without regard to load), the victim stays
// on its original partition rather than queueing somewhere worse — the
// router is only honored when it picks genuinely idle capacity.
func TestRequeueIgnoresLoadBlindPick(t *testing.T) {
	env := newFleetEnv(t, 3, NewRoundRobinRouter())
	ids := env.fleet.IDs()
	s, _ := env.d.OpenSession("ops")
	// Unpinned victim consumes round-robin pick 0 → partition 0; the next
	// router pick will be index 1.
	victim, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 400), Class: sched.ClassDev})
	if err != nil {
		t.Fatal(err)
	}
	if victim.Device != ids[0] {
		t.Fatalf("victim routed to %s, want %s", victim.Device, ids[0])
	}
	// Occupy partition 1 with a pinned job (no router pick consumed) and
	// leave partition 2 idle.
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 400), Class: sched.ClassDev, Device: ids[1]}); err != nil {
		t.Fatal(err)
	}
	env.clk.Advance(5 * time.Second)
	if _, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 30), Class: sched.ClassProduction, Device: ids[0]}); err != nil {
		t.Fatal(err)
	}
	// Requeue saw idle capacity on p2, but round-robin pointed at busy p1:
	// the pick is rejected and the victim waits at home instead.
	v, _ := env.d.JobStatus(s.Token, victim.ID)
	if v.Preemptions != 1 {
		t.Fatalf("victim preemptions = %d, want 1", v.Preemptions)
	}
	if v.Device != ids[0] || v.State != JobQueued {
		t.Fatalf("victim = %s on %s, want queued on %s (busy pick rejected)", v.State, v.Device, ids[0])
	}
	env.drain(t, 2*time.Hour)
}

// TestJobEventLifecycle checks the listener sees the full event sequence for
// a plain completed job, in order, with consistent snapshots.
func TestJobEventLifecycle(t *testing.T) {
	env := newFleetEnv(t, 1, nil)
	var events []JobEvent
	env.d.cfg.JobListener = func(ev JobEvent) { events = append(events, ev) }
	s, _ := env.d.OpenSession("alice")
	j, err := env.d.Submit(s.Token, SubmitRequest{Program: payload(t, 10), Class: sched.ClassTest})
	if err != nil {
		t.Fatal(err)
	}
	env.drain(t, time.Hour)
	var types []JobEventType
	for _, ev := range events {
		if ev.Job.ID != j.ID {
			t.Fatalf("event for unexpected job %s", ev.Job.ID)
		}
		types = append(types, ev.Type)
	}
	want := []JobEventType{JobEventSubmitted, JobEventStarted, JobEventFinished}
	if len(types) != len(want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event %d = %s, want %s", i, types[i], want[i])
		}
	}
	last := events[len(events)-1]
	if last.Job.State != JobCompleted {
		t.Fatalf("finished snapshot state = %s", last.Job.State)
	}
	if last.At < events[0].At {
		t.Fatal("event times not monotone")
	}
}
