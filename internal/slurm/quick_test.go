package slurm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"hpcqc/internal/simclock"
)

// TestNoOversubscriptionProperty: whatever the submission stream, the
// cluster never allocates more nodes or GRES units than it has, at any
// instant of the simulation.
func TestNoOversubscriptionProperty(t *testing.T) {
	f := func(seed int64, nJobs uint8) bool {
		clk := simclock.New()
		const nodes, gres = 8, 10
		cluster, err := NewCluster(ClusterConfig{
			Clock: clk, Nodes: nodes, QPUGres: gres,
			Partitions: []Partition{
				{Name: "hi", Priority: 100},
				{Name: "lo", Priority: 10},
			},
		})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		violated := false
		check := func() {
			s := cluster.Stats()
			if s.FreeNodes < 0 || s.FreeNodes > nodes || s.FreeGres < 0 || s.FreeGres > gres {
				violated = true
			}
		}
		for i := 0; i < int(nJobs)%20+1; i++ {
			part := "lo"
			if rng.Intn(2) == 0 {
				part = "hi"
			}
			spec := JobSpec{
				Name: fmt.Sprintf("j%d", i), User: "u", Partition: part,
				Nodes:    rng.Intn(nodes) + 1,
				Walltime: time.Duration(rng.Intn(300)+1) * time.Second,
				QPUUnits: rng.Intn(gres + 1),
				OnStart:  func(int, map[string]string) { check() },
				OnFinish: func(int, JobState) { check() },
			}
			at := time.Duration(rng.Intn(600)) * time.Second
			clk.Schedule(at, "submit", func() {
				if _, err := cluster.Submit(spec); err != nil {
					violated = true
				}
			})
		}
		clk.Run(100000)
		check()
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAllJobsReachTerminalProperty: every accepted job eventually runs to a
// terminal state — nothing starves, whatever the priorities and sizes.
func TestAllJobsReachTerminalProperty(t *testing.T) {
	f := func(seed int64, nJobs uint8) bool {
		clk := simclock.New()
		cluster, err := NewCluster(ClusterConfig{
			Clock: clk, Nodes: 4,
			Partitions: []Partition{
				{Name: "hi", Priority: 100},
				{Name: "lo", Priority: 10},
			},
		})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		n := int(nJobs)%15 + 1
		finished := 0
		var ids []int
		for i := 0; i < n; i++ {
			part := []string{"hi", "lo"}[rng.Intn(2)]
			id, err := cluster.Submit(JobSpec{
				Name: fmt.Sprintf("j%d", i), User: "u", Partition: part,
				Nodes:    rng.Intn(4) + 1,
				Walltime: time.Duration(rng.Intn(120)+1) * time.Second,
				OnFinish: func(int, JobState) { finished++ },
			})
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		clk.Run(100000)
		for _, id := range ids {
			info, err := cluster.JobInfo(id)
			if err != nil {
				return false
			}
			if info.State != StateCompleted && info.State != StateCancelled && info.State != StatePreempted {
				return false
			}
		}
		return finished >= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestHigherPriorityStartsNoLaterProperty: for two identical jobs submitted
// at the same instant into different partitions, the higher-priority
// partition's job never starts after the lower one.
func TestHigherPriorityStartsNoLaterProperty(t *testing.T) {
	f := func(seed int64, width uint8) bool {
		clk := simclock.New()
		cluster, err := NewCluster(ClusterConfig{
			Clock: clk, Nodes: 2,
			Partitions: []Partition{
				{Name: "hi", Priority: 100},
				{Name: "lo", Priority: 10},
			},
		})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		// Fill the cluster first so both jobs must queue.
		_, err = cluster.Submit(JobSpec{
			Name: "filler", User: "u", Partition: "lo", Nodes: 2,
			Walltime: time.Duration(rng.Intn(100)+30) * time.Second,
		})
		if err != nil {
			return false
		}
		var hiStart, loStart time.Duration
		runtime := time.Duration(int(width)%60+10) * time.Second
		_, err = cluster.Submit(JobSpec{
			Name: "lo-job", User: "u", Partition: "lo", Nodes: 2, Walltime: runtime,
			OnStart: func(int, map[string]string) { loStart = clk.Now() },
		})
		if err != nil {
			return false
		}
		_, err = cluster.Submit(JobSpec{
			Name: "hi-job", User: "u", Partition: "hi", Nodes: 2, Walltime: runtime,
			OnStart: func(int, map[string]string) { hiStart = clk.Now() },
		})
		if err != nil {
			return false
		}
		clk.Run(100000)
		return hiStart <= loStart
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
