// Package slurm is a discrete-event simulator of the subset of a batch
// resource manager that the paper's middleware interacts with: partitions
// with distinct priorities, node allocation, GRES/license counters for
// fractional QPU shares, EASY backfill, partition-based preemption, and a
// Spank-style plugin hook that resolves `--qpu=<resource>` into environment
// configuration for the runtime (paper §3.2, §3.4, §3.5).
//
// The daemon consumes only this interface surface — job priority, partition,
// GRES — which is exactly why the simulator substitutes faithfully for a real
// Slurm here: the middleware cannot tell the difference.
package slurm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hpcqc/internal/simclock"
)

// JobState is the Slurm-visible lifecycle state.
type JobState string

const (
	// StatePending is queued, waiting for resources or priority.
	StatePending JobState = "PENDING"
	// StateRunning is allocated and executing.
	StateRunning JobState = "RUNNING"
	// StateCompleted finished normally.
	StateCompleted JobState = "COMPLETED"
	// StateCancelled was cancelled by user or admin.
	StateCancelled JobState = "CANCELLED"
	// StatePreempted was preempted by a higher-priority partition job and
	// requeued.
	StatePreempted JobState = "PREEMPTED"
)

// Partition is a scheduling domain with a relative priority, mirroring the
// paper's mapping of job classes (production/test/development) to Slurm
// partitions (§3.3).
type Partition struct {
	Name string
	// Priority orders pending jobs across partitions; higher wins.
	Priority int
	// PreemptLower lets jobs in this partition preempt running jobs from
	// lower-priority partitions when resources are short.
	PreemptLower bool
	// MaxWalltime bounds job duration requests; 0 means unlimited.
	MaxWalltime time.Duration
}

// ClusterConfig sizes the simulated machine.
type ClusterConfig struct {
	// Clock drives everything. Required.
	Clock *simclock.Clock
	// Nodes is the number of identical classical nodes.
	Nodes int
	// QPUGres is the number of QPU GRES units (the paper suggests 10,
	// i.e. timeshares in 10 % increments, §3.5). 0 disables QPU GRES.
	QPUGres int
	// Partitions define the scheduling domains. Required, at least one.
	Partitions []Partition
	// BackfillDepth bounds how many pending jobs each scheduling pass
	// considers for backfill (default 50).
	BackfillDepth int
	// AgePriorityPerMinute adds to job priority per pending minute,
	// implementing Slurm's age factor (default 1).
	AgePriorityPerMinute float64
}

// JobSpec describes a submission.
type JobSpec struct {
	Name      string
	User      string
	Partition string
	// Nodes requested (≥1).
	Nodes int
	// Walltime is the requested time limit. The simulator also uses it as
	// the actual runtime unless ActualRuntime is set.
	Walltime time.Duration
	// ActualRuntime, when non-zero, is the real runtime (≤ Walltime),
	// modelling users who over-request.
	ActualRuntime time.Duration
	// QPUUnits requests QPU GRES units (fractional QPU share).
	QPUUnits int
	// QPUResource is the `--qpu=<resource>` plugin option: which quantum
	// resource the job's runtime should bind to.
	QPUResource string
	// Hint is the workload-pattern scheduler hint from the paper's
	// Table 1: "qc-heavy", "cc-heavy", "qc-balanced" or empty.
	Hint string
	// OnStart runs when the job starts (simulation callback). The env map
	// carries the plugin-resolved runtime configuration.
	OnStart func(jobID int, env map[string]string)
	// OnFinish runs when the job completes or is preempted/cancelled.
	OnFinish func(jobID int, state JobState)
}

// Job is the internal record; fields are read via JobInfo.
type Job struct {
	ID        int
	Spec      JobSpec
	State     JobState
	SubmitAt  time.Duration
	StartAt   time.Duration
	EndAt     time.Duration
	Requeues  int
	endEvent  *simclock.Event
	partition *Partition
}

// JobInfo is the externally visible job view.
type JobInfo struct {
	ID        int           `json:"id"`
	Name      string        `json:"name"`
	User      string        `json:"user"`
	Partition string        `json:"partition"`
	State     JobState      `json:"state"`
	Nodes     int           `json:"nodes"`
	QPUUnits  int           `json:"qpu_units"`
	Hint      string        `json:"hint"`
	Priority  float64       `json:"priority"`
	SubmitAt  time.Duration `json:"submit_at"`
	StartAt   time.Duration `json:"start_at"`
	EndAt     time.Duration `json:"end_at"`
	WaitTime  time.Duration `json:"wait_time"`
	Requeues  int           `json:"requeues"`
}

// Cluster is the simulated resource manager.
type Cluster struct {
	cfg ClusterConfig

	mu         sync.Mutex
	partitions map[string]*Partition
	jobs       map[int]*Job
	pending    []*Job
	running    map[int]*Job
	nextID     int

	freeNodes int
	freeGres  int

	// accounting
	nodeSecondsUsed float64
	gresSecondsUsed float64
	createdAt       time.Duration
}

// NewCluster validates the config and returns an idle cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Clock == nil {
		return nil, errors.New("slurm: config requires a clock")
	}
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("slurm: need at least 1 node, got %d", cfg.Nodes)
	}
	if len(cfg.Partitions) == 0 {
		return nil, errors.New("slurm: need at least one partition")
	}
	if cfg.BackfillDepth <= 0 {
		cfg.BackfillDepth = 50
	}
	if cfg.AgePriorityPerMinute == 0 {
		cfg.AgePriorityPerMinute = 1
	}
	c := &Cluster{
		cfg:        cfg,
		partitions: make(map[string]*Partition),
		jobs:       make(map[int]*Job),
		running:    make(map[int]*Job),
		freeNodes:  cfg.Nodes,
		freeGres:   cfg.QPUGres,
		createdAt:  cfg.Clock.Now(),
	}
	for i := range cfg.Partitions {
		p := cfg.Partitions[i]
		if p.Name == "" {
			return nil, errors.New("slurm: partition with empty name")
		}
		if _, dup := c.partitions[p.Name]; dup {
			return nil, fmt.Errorf("slurm: duplicate partition %q", p.Name)
		}
		c.partitions[p.Name] = &p
	}
	return c, nil
}

// Submit enqueues a job and triggers a scheduling pass.
func (c *Cluster) Submit(spec JobSpec) (int, error) {
	c.mu.Lock()
	p, ok := c.partitions[spec.Partition]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("slurm: unknown partition %q", spec.Partition)
	}
	if spec.Nodes < 1 {
		c.mu.Unlock()
		return 0, fmt.Errorf("slurm: job requests %d nodes", spec.Nodes)
	}
	if spec.Nodes > c.cfg.Nodes {
		c.mu.Unlock()
		return 0, fmt.Errorf("slurm: job requests %d nodes, cluster has %d", spec.Nodes, c.cfg.Nodes)
	}
	if spec.QPUUnits < 0 || spec.QPUUnits > c.cfg.QPUGres {
		c.mu.Unlock()
		return 0, fmt.Errorf("slurm: job requests %d QPU units, cluster has %d", spec.QPUUnits, c.cfg.QPUGres)
	}
	if spec.Walltime <= 0 {
		c.mu.Unlock()
		return 0, errors.New("slurm: job needs a positive walltime")
	}
	if p.MaxWalltime > 0 && spec.Walltime > p.MaxWalltime {
		c.mu.Unlock()
		return 0, fmt.Errorf("slurm: walltime %s exceeds partition %s limit %s", spec.Walltime, p.Name, p.MaxWalltime)
	}
	if spec.ActualRuntime <= 0 || spec.ActualRuntime > spec.Walltime {
		spec.ActualRuntime = spec.Walltime
	}
	c.nextID++
	j := &Job{
		ID:        c.nextID,
		Spec:      spec,
		State:     StatePending,
		SubmitAt:  c.cfg.Clock.Now(),
		partition: p,
	}
	c.jobs[j.ID] = j
	c.pending = append(c.pending, j)
	c.mu.Unlock()
	c.Schedule()
	return j.ID, nil
}

// priority computes a job's current scheduling priority.
func (c *Cluster) priority(j *Job) float64 {
	age := (c.cfg.Clock.Now() - j.SubmitAt).Minutes()
	return float64(j.partition.Priority)*1000 + age*c.cfg.AgePriorityPerMinute
}

// Schedule runs one scheduling pass: priority order with EASY backfill and
// optional preemption. It is idempotent and safe to call at any time.
func (c *Cluster) Schedule() {
	type startable struct {
		job *Job
		env map[string]string
	}
	var toStart []startable
	var toPreempt []*Job

	c.mu.Lock()
	if len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	// Sort pending by priority, descending; FIFO within equal priority.
	sort.SliceStable(c.pending, func(a, b int) bool {
		return c.priority(c.pending[a]) > c.priority(c.pending[b])
	})

	freeNodes, freeGres := c.freeNodes, c.freeGres
	var stillPending []*Job
	headBlocked := false
	var shadowTime time.Duration // earliest start of the blocked head job
	var headNodes, headGres int

	depth := 0
	for _, j := range c.pending {
		depth++
		fits := j.Spec.Nodes <= freeNodes && j.Spec.QPUUnits <= freeGres
		if fits && !headBlocked {
			freeNodes -= j.Spec.Nodes
			freeGres -= j.Spec.QPUUnits
			toStart = append(toStart, startable{j, c.resolvePluginLocked(j)})
			continue
		}
		if !headBlocked {
			// First blocked job: try preemption, else set up backfill window.
			if j.partition.PreemptLower {
				victims := c.preemptionPlanLocked(j, freeNodes, freeGres)
				if victims != nil {
					toPreempt = append(toPreempt, victims...)
					for _, v := range victims {
						freeNodes += v.Spec.Nodes
						freeGres += v.Spec.QPUUnits
					}
					freeNodes -= j.Spec.Nodes
					freeGres -= j.Spec.QPUUnits
					toStart = append(toStart, startable{j, c.resolvePluginLocked(j)})
					continue
				}
			}
			headBlocked = true
			headNodes, headGres = j.Spec.Nodes, j.Spec.QPUUnits
			shadowTime = c.shadowTimeLocked(headNodes, headGres, freeNodes, freeGres)
			stillPending = append(stillPending, j)
			continue
		}
		// Backfill: start only if it fits now AND finishes before the
		// shadow time, or it doesn't touch the head job's resources.
		if depth > c.cfg.BackfillDepth {
			stillPending = append(stillPending, j)
			continue
		}
		if fits && c.cfg.Clock.Now()+j.Spec.Walltime <= shadowTime {
			freeNodes -= j.Spec.Nodes
			freeGres -= j.Spec.QPUUnits
			toStart = append(toStart, startable{j, c.resolvePluginLocked(j)})
			continue
		}
		stillPending = append(stillPending, j)
	}
	c.pending = stillPending
	c.mu.Unlock()

	for _, v := range toPreempt {
		c.preempt(v)
	}
	for _, s := range toStart {
		c.start(s.job, s.env)
	}
}

// shadowTimeLocked returns the earliest simulation time at which the blocked
// head job could start, assuming running jobs end at their walltime.
func (c *Cluster) shadowTimeLocked(needNodes, needGres, freeNodes, freeGres int) time.Duration {
	type release struct {
		at    time.Duration
		nodes int
		gres  int
	}
	releases := make([]release, 0, len(c.running))
	for _, j := range c.running {
		releases = append(releases, release{j.StartAt + j.Spec.Walltime, j.Spec.Nodes, j.Spec.QPUUnits})
	}
	sort.Slice(releases, func(a, b int) bool { return releases[a].at < releases[b].at })
	nodes, gres := freeNodes, freeGres
	for _, r := range releases {
		nodes += r.nodes
		gres += r.gres
		if nodes >= needNodes && gres >= needGres {
			return r.at
		}
	}
	// Unsatisfiable from running jobs alone; effectively no backfill window.
	return c.cfg.Clock.Now()
}

// preemptionPlanLocked picks lower-priority running victims that free enough
// resources for j, preferring the lowest-priority, most recently started.
// Returns nil if preemption cannot satisfy the request.
func (c *Cluster) preemptionPlanLocked(j *Job, freeNodes, freeGres int) []*Job {
	candidates := make([]*Job, 0, len(c.running))
	for _, r := range c.running {
		if r.partition.Priority < j.partition.Priority {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	sort.Slice(candidates, func(a, b int) bool {
		if candidates[a].partition.Priority != candidates[b].partition.Priority {
			return candidates[a].partition.Priority < candidates[b].partition.Priority
		}
		return candidates[a].StartAt > candidates[b].StartAt
	})
	var victims []*Job
	nodes, gres := freeNodes, freeGres
	for _, v := range candidates {
		if nodes >= j.Spec.Nodes && gres >= j.Spec.QPUUnits {
			break
		}
		victims = append(victims, v)
		nodes += v.Spec.Nodes
		gres += v.Spec.QPUUnits
	}
	if nodes >= j.Spec.Nodes && gres >= j.Spec.QPUUnits {
		return victims
	}
	return nil
}

// resolvePluginLocked implements the Spank-style plugin: the `--qpu` option
// becomes environment configuration for the job's runtime, decoupling the
// quantum resource definition from program source (paper §2.1, §3.2).
func (c *Cluster) resolvePluginLocked(j *Job) map[string]string {
	env := map[string]string{
		"SLURM_JOB_ID":        fmt.Sprintf("%d", j.ID),
		"SLURM_JOB_PARTITION": j.Spec.Partition,
		"SLURM_JOB_USER":      j.Spec.User,
	}
	if j.Spec.QPUResource != "" {
		env["QRMI_RESOURCE"] = j.Spec.QPUResource
	}
	if j.Spec.QPUUnits > 0 && c.cfg.QPUGres > 0 {
		env["QRMI_QPU_SHARE"] = fmt.Sprintf("%g", float64(j.Spec.QPUUnits)/float64(c.cfg.QPUGres))
	}
	if j.Spec.Hint != "" {
		env["QRMI_WORKLOAD_HINT"] = j.Spec.Hint
	}
	// Priority propagates to the middleware daemon, which maps it onto its
	// second-level queue classes (paper §3.3: "the daemon retrieves the
	// job's priority from Slurm").
	env["SLURM_JOB_PRIORITY"] = fmt.Sprintf("%d", j.partition.Priority)
	return env
}

// start transitions a job to RUNNING and schedules its completion.
func (c *Cluster) start(j *Job, env map[string]string) {
	c.mu.Lock()
	if j.State != StatePending {
		c.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.StartAt = c.cfg.Clock.Now()
	c.freeNodes -= j.Spec.Nodes
	c.freeGres -= j.Spec.QPUUnits
	c.running[j.ID] = j
	j.endEvent = c.cfg.Clock.Schedule(j.Spec.ActualRuntime, fmt.Sprintf("slurm-end-%d", j.ID), func() {
		c.complete(j, StateCompleted)
	})
	c.mu.Unlock()
	if j.Spec.OnStart != nil {
		j.Spec.OnStart(j.ID, env)
	}
}

// complete finishes a running job with the given terminal state.
func (c *Cluster) complete(j *Job, state JobState) {
	c.mu.Lock()
	if j.State != StateRunning {
		c.mu.Unlock()
		return
	}
	c.cfg.Clock.Cancel(j.endEvent)
	j.State = state
	j.EndAt = c.cfg.Clock.Now()
	elapsed := (j.EndAt - j.StartAt).Seconds()
	c.nodeSecondsUsed += elapsed * float64(j.Spec.Nodes)
	c.gresSecondsUsed += elapsed * float64(j.Spec.QPUUnits)
	c.freeNodes += j.Spec.Nodes
	c.freeGres += j.Spec.QPUUnits
	delete(c.running, j.ID)
	c.mu.Unlock()
	if j.Spec.OnFinish != nil {
		j.Spec.OnFinish(j.ID, state)
	}
	c.Schedule()
}

// preempt requeues a running job (Slurm's preempt/requeue mode).
func (c *Cluster) preempt(j *Job) {
	c.mu.Lock()
	if j.State != StateRunning {
		c.mu.Unlock()
		return
	}
	c.cfg.Clock.Cancel(j.endEvent)
	elapsed := (c.cfg.Clock.Now() - j.StartAt).Seconds()
	c.nodeSecondsUsed += elapsed * float64(j.Spec.Nodes)
	c.gresSecondsUsed += elapsed * float64(j.Spec.QPUUnits)
	c.freeNodes += j.Spec.Nodes
	c.freeGres += j.Spec.QPUUnits
	delete(c.running, j.ID)
	j.State = StatePending
	j.Requeues++
	j.SubmitAt = c.cfg.Clock.Now() // age resets on requeue
	c.pending = append(c.pending, j)
	c.mu.Unlock()
	if j.Spec.OnFinish != nil {
		j.Spec.OnFinish(j.ID, StatePreempted)
	}
}

// Cancel removes a pending job or stops a running one.
func (c *Cluster) Cancel(id int) error {
	c.mu.Lock()
	j, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("slurm: unknown job %d", id)
	}
	switch j.State {
	case StatePending:
		for i, p := range c.pending {
			if p == j {
				c.pending = append(c.pending[:i], c.pending[i+1:]...)
				break
			}
		}
		j.State = StateCancelled
		j.EndAt = c.cfg.Clock.Now()
		c.mu.Unlock()
		if j.Spec.OnFinish != nil {
			j.Spec.OnFinish(j.ID, StateCancelled)
		}
		return nil
	case StateRunning:
		c.mu.Unlock()
		c.complete(j, StateCancelled)
		return nil
	default:
		c.mu.Unlock()
		return fmt.Errorf("slurm: job %d already %s", id, j.State)
	}
}

// JobInfo returns the externally visible state of a job.
func (c *Cluster) JobInfo(id int) (JobInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("slurm: unknown job %d", id)
	}
	info := JobInfo{
		ID:        j.ID,
		Name:      j.Spec.Name,
		User:      j.Spec.User,
		Partition: j.Spec.Partition,
		State:     j.State,
		Nodes:     j.Spec.Nodes,
		QPUUnits:  j.Spec.QPUUnits,
		Hint:      j.Spec.Hint,
		Priority:  c.priority(j),
		SubmitAt:  j.SubmitAt,
		StartAt:   j.StartAt,
		EndAt:     j.EndAt,
		Requeues:  j.Requeues,
	}
	if j.State == StateRunning || j.State == StateCompleted || j.State == StateCancelled {
		info.WaitTime = j.StartAt - j.SubmitAt
	}
	return info, nil
}

// Stats summarizes cluster usage.
type Stats struct {
	Nodes           int           `json:"nodes"`
	FreeNodes       int           `json:"free_nodes"`
	QPUGres         int           `json:"qpu_gres"`
	FreeGres        int           `json:"free_gres"`
	Pending         int           `json:"pending"`
	Running         int           `json:"running"`
	NodeUtilization float64       `json:"node_utilization"`
	GresUtilization float64       `json:"gres_utilization"`
	Elapsed         time.Duration `json:"elapsed"`
}

// Stats returns usage counters including time-integrated utilization.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock.Now()
	elapsed := (now - c.createdAt).Seconds()
	s := Stats{
		Nodes:     c.cfg.Nodes,
		FreeNodes: c.freeNodes,
		QPUGres:   c.cfg.QPUGres,
		FreeGres:  c.freeGres,
		Pending:   len(c.pending),
		Running:   len(c.running),
		Elapsed:   now - c.createdAt,
	}
	nodeSec := c.nodeSecondsUsed
	gresSec := c.gresSecondsUsed
	for _, j := range c.running {
		run := (now - j.StartAt).Seconds()
		nodeSec += run * float64(j.Spec.Nodes)
		gresSec += run * float64(j.Spec.QPUUnits)
	}
	if elapsed > 0 {
		s.NodeUtilization = nodeSec / (elapsed * float64(c.cfg.Nodes))
		if c.cfg.QPUGres > 0 {
			s.GresUtilization = gresSec / (elapsed * float64(c.cfg.QPUGres))
		}
	}
	return s
}

// PendingIDs lists pending job IDs in current priority order.
func (c *Cluster) PendingIDs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.SliceStable(c.pending, func(a, b int) bool {
		return c.priority(c.pending[a]) > c.priority(c.pending[b])
	})
	ids := make([]int, len(c.pending))
	for i, j := range c.pending {
		ids[i] = j.ID
	}
	return ids
}
