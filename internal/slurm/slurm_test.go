package slurm

import (
	"testing"
	"time"

	"hpcqc/internal/simclock"
)

func stdPartitions() []Partition {
	return []Partition{
		{Name: "production", Priority: 100, PreemptLower: true},
		{Name: "test", Priority: 50},
		{Name: "dev", Priority: 10, MaxWalltime: 2 * time.Hour},
	}
}

func newTestCluster(t *testing.T, clk *simclock.Clock, nodes, gres int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Clock:      clk,
		Nodes:      nodes,
		QPUGres:    gres,
		Partitions: stdPartitions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	clk := simclock.New()
	if _, err := NewCluster(ClusterConfig{Nodes: 1, Partitions: stdPartitions()}); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewCluster(ClusterConfig{Clock: clk, Nodes: 0, Partitions: stdPartitions()}); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if _, err := NewCluster(ClusterConfig{Clock: clk, Nodes: 1}); err == nil {
		t.Fatal("no partitions accepted")
	}
	dup := []Partition{{Name: "a", Priority: 1}, {Name: "a", Priority: 2}}
	if _, err := NewCluster(ClusterConfig{Clock: clk, Nodes: 1, Partitions: dup}); err == nil {
		t.Fatal("duplicate partition accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 4, 10)
	cases := []JobSpec{
		{Partition: "ghost", Nodes: 1, Walltime: time.Hour},
		{Partition: "dev", Nodes: 0, Walltime: time.Hour},
		{Partition: "dev", Nodes: 100, Walltime: time.Hour},
		{Partition: "dev", Nodes: 1, Walltime: 0},
		{Partition: "dev", Nodes: 1, Walltime: time.Hour, QPUUnits: 50},
		{Partition: "dev", Nodes: 1, Walltime: 10 * time.Hour}, // over MaxWalltime
	}
	for i, spec := range cases {
		if _, err := c.Submit(spec); err == nil {
			t.Errorf("case %d accepted: %+v", i, spec)
		}
	}
}

func TestJobLifecycle(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 4, 0)
	var startedEnv map[string]string
	var finished JobState
	id, err := c.Submit(JobSpec{
		Name: "j1", User: "alice", Partition: "production", Nodes: 2,
		Walltime: time.Hour, QPUResource: "qpu-onprem", Hint: "qc-balanced",
		OnStart:  func(_ int, env map[string]string) { startedEnv = env },
		OnFinish: func(_ int, st JobState) { finished = st },
	})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := c.JobInfo(id)
	if info.State != StateRunning {
		t.Fatalf("state = %s", info.State)
	}
	// Plugin resolved --qpu into env.
	if startedEnv["QRMI_RESOURCE"] != "qpu-onprem" {
		t.Fatalf("env = %v", startedEnv)
	}
	if startedEnv["QRMI_WORKLOAD_HINT"] != "qc-balanced" {
		t.Fatalf("hint env = %v", startedEnv)
	}
	if startedEnv["SLURM_JOB_PRIORITY"] != "100" {
		t.Fatalf("priority env = %v", startedEnv)
	}
	clk.Advance(time.Hour + time.Second)
	info, _ = c.JobInfo(id)
	if info.State != StateCompleted || finished != StateCompleted {
		t.Fatalf("final state = %s / %s", info.State, finished)
	}
}

func TestNodeExhaustionQueues(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 4, 0)
	id1, _ := c.Submit(JobSpec{Partition: "test", Nodes: 3, Walltime: time.Hour})
	id2, _ := c.Submit(JobSpec{Partition: "test", Nodes: 3, Walltime: time.Hour})
	i1, _ := c.JobInfo(id1)
	i2, _ := c.JobInfo(id2)
	if i1.State != StateRunning || i2.State != StatePending {
		t.Fatalf("states: %s %s", i1.State, i2.State)
	}
	clk.Advance(time.Hour + time.Second)
	i2, _ = c.JobInfo(id2)
	if i2.State != StateRunning {
		t.Fatalf("second job not started: %s", i2.State)
	}
	if i2.WaitTime < time.Hour {
		t.Fatalf("wait time = %s", i2.WaitTime)
	}
}

func TestGresExhaustionQueues(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 10, 10)
	// Two jobs each taking 6 of 10 QPU units cannot co-run.
	id1, _ := c.Submit(JobSpec{Partition: "test", Nodes: 1, Walltime: time.Hour, QPUUnits: 6})
	id2, _ := c.Submit(JobSpec{Partition: "test", Nodes: 1, Walltime: time.Hour, QPUUnits: 6})
	i1, _ := c.JobInfo(id1)
	i2, _ := c.JobInfo(id2)
	if i1.State != StateRunning || i2.State != StatePending {
		t.Fatalf("states: %s %s", i1.State, i2.State)
	}
	// But a 4-unit job fits alongside (backfill-free case: it is next by
	// priority after the blocked 6-unit job and finishes within its shadow).
	id3, _ := c.Submit(JobSpec{Partition: "test", Nodes: 1, Walltime: 30 * time.Minute, QPUUnits: 4})
	i3, _ := c.JobInfo(id3)
	if i3.State != StateRunning {
		t.Fatalf("4-unit job did not backfill: %s", i3.State)
	}
}

func TestQPUShareEnv(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 4, 10)
	var env map[string]string
	c.Submit(JobSpec{
		Partition: "test", Nodes: 1, Walltime: time.Hour, QPUUnits: 3,
		OnStart: func(_ int, e map[string]string) { env = e },
	})
	if env["QRMI_QPU_SHARE"] != "0.3" {
		t.Fatalf("share env = %v", env)
	}
}

func TestPriorityOrdering(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 2, 0)
	// Fill the cluster with a production job (equal-priority peers cannot
	// preempt it), then queue a dev and another production job.
	c.Submit(JobSpec{Partition: "production", Nodes: 2, Walltime: 30 * time.Minute})
	devID, _ := c.Submit(JobSpec{Partition: "dev", Nodes: 2, Walltime: time.Hour})
	prodID, _ := c.Submit(JobSpec{Partition: "production", Nodes: 2, Walltime: time.Hour})
	order := c.PendingIDs()
	if len(order) != 2 || order[0] != prodID || order[1] != devID {
		t.Fatalf("pending order = %v, want [prod dev]", order)
	}
}

func TestPreemptionByProduction(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 2, 0)
	devID, _ := c.Submit(JobSpec{Partition: "dev", Nodes: 2, Walltime: 2 * time.Hour})
	var devState JobState
	dev, _ := c.JobInfo(devID)
	if dev.State != StateRunning {
		t.Fatalf("dev state: %s", dev.State)
	}
	// Production arrives: it must preempt the dev job immediately.
	prodID, _ := c.Submit(JobSpec{
		Partition: "production", Nodes: 2, Walltime: time.Hour,
	})
	_ = devState
	prod, _ := c.JobInfo(prodID)
	if prod.State != StateRunning {
		t.Fatalf("production did not start: %s", prod.State)
	}
	dev, _ = c.JobInfo(devID)
	if dev.State != StatePending || dev.Requeues != 1 {
		t.Fatalf("dev not requeued: %s requeues=%d", dev.State, dev.Requeues)
	}
	// After production completes, the dev job restarts.
	clk.Advance(time.Hour + time.Second)
	dev, _ = c.JobInfo(devID)
	if dev.State != StateRunning {
		t.Fatalf("dev not restarted: %s", dev.State)
	}
}

func TestNoPreemptionAmongEqualPriority(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 2, 0)
	c.Submit(JobSpec{Partition: "production", Nodes: 2, Walltime: time.Hour})
	second, _ := c.Submit(JobSpec{Partition: "production", Nodes: 2, Walltime: time.Hour})
	info, _ := c.JobInfo(second)
	if info.State != StatePending {
		t.Fatalf("equal-priority job preempted a peer: %s", info.State)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 4, 0)
	// Occupy 3 nodes for 1h.
	c.Submit(JobSpec{Partition: "test", Nodes: 3, Walltime: time.Hour})
	// Head job needs all 4 nodes → blocked until t=1h.
	headID, _ := c.Submit(JobSpec{Partition: "test", Nodes: 4, Walltime: time.Hour})
	// Short 1-node job fits in the backfill window (30m < 1h shadow).
	shortID, _ := c.Submit(JobSpec{Partition: "test", Nodes: 1, Walltime: 30 * time.Minute})
	// Long 1-node job would delay the head (2h > 1h shadow): must wait.
	longID, _ := c.Submit(JobSpec{Partition: "test", Nodes: 1, Walltime: 2 * time.Hour})

	short, _ := c.JobInfo(shortID)
	long, _ := c.JobInfo(longID)
	head, _ := c.JobInfo(headID)
	if short.State != StateRunning {
		t.Fatalf("short backfill job: %s", short.State)
	}
	if long.State != StatePending {
		t.Fatalf("long job backfilled past head: %s", long.State)
	}
	if head.State != StatePending {
		t.Fatalf("head: %s", head.State)
	}
	// Head starts when the 3-node job ends.
	clk.Advance(time.Hour + time.Second)
	head, _ = c.JobInfo(headID)
	if head.State != StateRunning {
		t.Fatalf("head at 1h: %s", head.State)
	}
	if head.WaitTime > time.Hour+time.Minute {
		t.Fatalf("head delayed by backfill: wait %s", head.WaitTime)
	}
}

func TestCancelPending(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 1, 0)
	c.Submit(JobSpec{Partition: "test", Nodes: 1, Walltime: time.Hour})
	var got JobState
	id2, _ := c.Submit(JobSpec{
		Partition: "test", Nodes: 1, Walltime: time.Hour,
		OnFinish: func(_ int, st JobState) { got = st },
	})
	if err := c.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	if got != StateCancelled {
		t.Fatalf("callback state = %s", got)
	}
	if err := c.Cancel(id2); err == nil {
		t.Fatal("double cancel accepted")
	}
	if err := c.Cancel(9999); err == nil {
		t.Fatal("unknown cancel accepted")
	}
}

func TestCancelRunningFreesResources(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 2, 0)
	id1, _ := c.Submit(JobSpec{Partition: "test", Nodes: 2, Walltime: time.Hour})
	id2, _ := c.Submit(JobSpec{Partition: "test", Nodes: 2, Walltime: time.Hour})
	c.Cancel(id1)
	i2, _ := c.JobInfo(id2)
	if i2.State != StateRunning {
		t.Fatalf("resources not freed: %s", i2.State)
	}
}

func TestActualRuntimeShorterThanWalltime(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 1, 0)
	id, _ := c.Submit(JobSpec{
		Partition: "test", Nodes: 1,
		Walltime: time.Hour, ActualRuntime: 10 * time.Minute,
	})
	clk.Advance(11 * time.Minute)
	info, _ := c.JobInfo(id)
	if info.State != StateCompleted {
		t.Fatalf("state = %s, want completed at actual runtime", info.State)
	}
}

func TestStatsUtilization(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 4, 10)
	c.Submit(JobSpec{Partition: "test", Nodes: 2, Walltime: time.Hour, QPUUnits: 5})
	clk.Advance(time.Hour)
	st := c.Stats()
	// 2 of 4 nodes for the whole hour → 0.5; 5 of 10 gres → 0.5.
	if st.NodeUtilization < 0.49 || st.NodeUtilization > 0.51 {
		t.Fatalf("node util = %g", st.NodeUtilization)
	}
	if st.GresUtilization < 0.49 || st.GresUtilization > 0.51 {
		t.Fatalf("gres util = %g", st.GresUtilization)
	}
}

func TestAgePriorityPromotesOldJobs(t *testing.T) {
	clk := simclock.New()
	c, err := NewCluster(ClusterConfig{
		Clock: clk, Nodes: 1,
		Partitions:           []Partition{{Name: "p", Priority: 1}},
		AgePriorityPerMinute: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Submit(JobSpec{Partition: "p", Nodes: 1, Walltime: 10 * time.Hour})
	oldID, _ := c.Submit(JobSpec{Partition: "p", Nodes: 1, Walltime: time.Hour})
	clk.Advance(30 * time.Minute)
	newID, _ := c.Submit(JobSpec{Partition: "p", Nodes: 1, Walltime: time.Hour})
	order := c.PendingIDs()
	if order[0] != oldID || order[1] != newID {
		t.Fatalf("age priority violated: %v", order)
	}
}

func TestJobInfoUnknown(t *testing.T) {
	clk := simclock.New()
	c := newTestCluster(t, clk, 1, 0)
	if _, err := c.JobInfo(42); err == nil {
		t.Fatal("unknown job accepted")
	}
}
