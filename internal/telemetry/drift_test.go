package telemetry

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestDriftDetectorStableSignal(t *testing.T) {
	d := NewDriftDetector()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		// 0.5% relative noise around 10: well inside the 5% warn band.
		state := d.Observe(10 + rng.NormFloat64()*0.05)
		if state != DriftOK {
			t.Fatalf("stable signal flagged %v at sample %d (dev %g)", state, i, d.Deviation())
		}
	}
}

func TestDriftDetectorDetectsStep(t *testing.T) {
	d := NewDriftDetector()
	for i := 0; i < 200; i++ {
		d.Observe(10)
	}
	// 20% step: must reach critical within a few samples.
	var state DriftState
	for i := 0; i < 30; i++ {
		state = d.Observe(12)
	}
	if state != DriftCritical {
		t.Fatalf("step not detected: %v (dev %g)", state, d.Deviation())
	}
}

func TestDriftDetectorWarningBand(t *testing.T) {
	d := NewDriftDetector()
	for i := 0; i < 200; i++ {
		d.Observe(10)
	}
	// 8% step: warning but not critical.
	var state DriftState
	for i := 0; i < 30; i++ {
		state = d.Observe(10.8)
	}
	if state != DriftWarning {
		t.Fatalf("8%% step state = %v (dev %g)", state, d.Deviation())
	}
}

func TestDriftBaselineFrozenDuringDrift(t *testing.T) {
	d := NewDriftDetector()
	for i := 0; i < 200; i++ {
		d.Observe(10)
	}
	base := d.Baseline()
	for i := 0; i < 500; i++ {
		d.Observe(13) // sustained 30% drift
	}
	// The baseline must not have absorbed the drifted value.
	if math.Abs(d.Baseline()-base) > 0.5 {
		t.Fatalf("baseline absorbed drift: %g → %g", base, d.Baseline())
	}
	if d.State() != DriftCritical {
		t.Fatalf("state = %v", d.State())
	}
}

func TestDriftSlowDrift(t *testing.T) {
	// Slow ramp: 0.1% per sample. The detector should eventually flag it.
	d := NewDriftDetector()
	for i := 0; i < 100; i++ {
		d.Observe(10)
	}
	flagged := false
	v := 10.0
	for i := 0; i < 2000; i++ {
		v *= 1.001
		if d.Observe(v) != DriftOK {
			flagged = true
			break
		}
	}
	if !flagged {
		t.Fatal("slow drift never flagged")
	}
}

func TestDriftZeroBaseline(t *testing.T) {
	d := NewDriftDetector()
	d.Observe(0)
	if d.Deviation() != 0 {
		t.Fatalf("zero/zero deviation = %g", d.Deviation())
	}
	d.Observe(1)
	if !math.IsInf(d.Deviation(), 1) && d.Deviation() < d.CriticalThreshold {
		t.Fatalf("deviation from zero baseline = %g", d.Deviation())
	}
}

func TestDriftStateString(t *testing.T) {
	if DriftOK.String() != "ok" || DriftWarning.String() != "warning" || DriftCritical.String() != "critical" {
		t.Fatal("state strings")
	}
	if DriftState(99).String() != "unknown" {
		t.Fatal("unknown state string")
	}
}

func TestAlertManagerFiresAfterFor(t *testing.T) {
	db := NewTSDB(0, 0)
	am := NewAlertManager(db)
	err := am.AddRule(&AlertRule{
		Name:      "qpu_temp_high",
		Series:    "temp",
		Severity:  SeverityCritical,
		Predicate: func(v float64) bool { return v > 50 },
		For:       10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	db.Append("temp", nil, 0, 60)
	if fired := am.Evaluate(0); len(fired) != 0 {
		t.Fatalf("fired before For elapsed: %v", fired)
	}
	db.Append("temp", nil, 5*time.Second, 61)
	if fired := am.Evaluate(5 * time.Second); len(fired) != 0 {
		t.Fatal("fired too early")
	}
	db.Append("temp", nil, 12*time.Second, 62)
	fired := am.Evaluate(12 * time.Second)
	if len(fired) != 1 || fired[0].Rule != "qpu_temp_high" || fired[0].Severity != "critical" {
		t.Fatalf("fired = %v", fired)
	}
	// Still firing, but not re-emitted.
	db.Append("temp", nil, 20*time.Second, 70)
	if fired := am.Evaluate(20 * time.Second); len(fired) != 0 {
		t.Fatal("alert re-fired while active")
	}
	if f := am.Firing(); len(f) != 1 || f[0] != "qpu_temp_high" {
		t.Fatalf("firing = %v", f)
	}
}

func TestAlertClearsAndRefires(t *testing.T) {
	db := NewTSDB(0, 0)
	am := NewAlertManager(db)
	am.AddRule(&AlertRule{
		Name:      "r",
		Series:    "x",
		Predicate: func(v float64) bool { return v > 1 },
	})
	db.Append("x", nil, 0, 5)
	if len(am.Evaluate(0)) != 1 {
		t.Fatal("did not fire with For=0")
	}
	db.Append("x", nil, time.Second, 0)
	am.Evaluate(time.Second)
	if len(am.Firing()) != 0 {
		t.Fatal("alert did not clear")
	}
	db.Append("x", nil, 2*time.Second, 5)
	if len(am.Evaluate(2*time.Second)) != 1 {
		t.Fatal("did not refire")
	}
	if len(am.History()) != 2 {
		t.Fatalf("history = %v", am.History())
	}
}

func TestAlertTransientDebounced(t *testing.T) {
	db := NewTSDB(0, 0)
	am := NewAlertManager(db)
	am.AddRule(&AlertRule{
		Name:      "r",
		Series:    "x",
		Predicate: func(v float64) bool { return v > 1 },
		For:       10 * time.Second,
	})
	// Spike, recover, spike again: never sustained ≥ 10s.
	db.Append("x", nil, 0, 5)
	am.Evaluate(0)
	db.Append("x", nil, 5*time.Second, 0)
	am.Evaluate(5 * time.Second)
	db.Append("x", nil, 8*time.Second, 5)
	am.Evaluate(8 * time.Second)
	db.Append("x", nil, 15*time.Second, 0)
	fired := am.Evaluate(15 * time.Second)
	if len(fired) != 0 || len(am.History()) != 0 {
		t.Fatalf("transient fired: %v", am.History())
	}
}

func TestAlertRuleValidation(t *testing.T) {
	am := NewAlertManager(NewTSDB(0, 0))
	if err := am.AddRule(&AlertRule{Name: "", Series: "x", Predicate: func(float64) bool { return true }}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := am.AddRule(&AlertRule{Name: "a", Series: "x"}); err == nil {
		t.Fatal("nil predicate accepted")
	}
	ok := &AlertRule{Name: "a", Series: "x", Predicate: func(float64) bool { return true }}
	if err := am.AddRule(ok); err != nil {
		t.Fatal(err)
	}
	dup := &AlertRule{Name: "a", Series: "y", Predicate: func(float64) bool { return true }}
	if err := am.AddRule(dup); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestAlertMissingSeriesIgnored(t *testing.T) {
	am := NewAlertManager(NewTSDB(0, 0))
	am.AddRule(&AlertRule{Name: "a", Series: "ghost", Predicate: func(float64) bool { return true }})
	if fired := am.Evaluate(0); len(fired) != 0 {
		t.Fatal("fired on missing series")
	}
}
