package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("jobs_total", "Total jobs.")
	c.Inc(Labels{"queue": "prod"}, 1)
	c.Inc(Labels{"queue": "prod"}, 2)
	c.Inc(Labels{"queue": "dev"}, 5)
	if got := c.Value(Labels{"queue": "prod"}); got != 3 {
		t.Fatalf("prod = %g", got)
	}
	if got := c.Value(Labels{"queue": "dev"}); got != 5 {
		t.Fatalf("dev = %g", got)
	}
	// Counters reject negative increments.
	c.Inc(Labels{"queue": "prod"}, -10)
	if got := c.Value(Labels{"queue": "prod"}); got != 3 {
		t.Fatalf("negative inc applied: %g", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.MustGauge("qpu_up", "QPU availability.")
	g.Set(nil, 1)
	if got := g.Value(nil); got != 1 {
		t.Fatalf("got %g", got)
	}
	g.Add(nil, -0.5)
	if got := g.Value(nil); got != 0.5 {
		t.Fatalf("got %g", got)
	}
	// Type mismatch operations are no-ops.
	g.Inc(nil, 5)
	g.Observe(nil, 5)
	if got := g.Value(nil); got != 0.5 {
		t.Fatalf("wrong-type op applied: %g", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("latency_seconds", "Latency.", []float64{0.1, 0.5, 1, 5})
	for i := 0; i < 100; i++ {
		h.Observe(nil, 0.3) // all in (0.1, 0.5]
	}
	if got := h.HistogramCount(nil); got != 100 {
		t.Fatalf("count = %d", got)
	}
	q := h.HistogramQuantile(nil, 0.5)
	if q < 0.1 || q > 0.5 {
		t.Fatalf("median = %g outside owning bucket", q)
	}
	if !math.IsNaN(h.HistogramQuantile(Labels{"x": "missing"}, 0.5)) {
		t.Fatal("missing series quantile not NaN")
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	r := NewRegistry()
	h := r.MustHistogram("d", "", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for i := 1; i <= 1000; i++ {
		h.Observe(nil, float64(i%10)+0.5)
	}
	p90 := h.HistogramQuantile(nil, 0.9)
	if p90 < 8 || p90 > 10 {
		t.Fatalf("p90 = %g", p90)
	}
	p10 := h.HistogramQuantile(nil, 0.1)
	if p10 > 2 {
		t.Fatalf("p10 = %g", p10)
	}
}

func TestHistogramValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Histogram("h", "", nil); err == nil {
		t.Fatal("empty buckets accepted")
	}
	if _, err := r.Histogram("h", "", []float64{2, 1}); err == nil {
		t.Fatal("descending buckets accepted")
	}
}

func TestRegistryNameValidation(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "with space", "dash-name", "ünïcode"} {
		if _, err := r.Counter(bad, ""); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	for _, good := range []string{"abc", "a_b_c", "ns:metric", "x9"} {
		if _, err := r.Counter(good, ""); err != nil {
			t.Errorf("name %q rejected", good)
		}
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.MustCounter("same", "")
	b := r.MustCounter("same", "")
	if a != b {
		t.Fatal("re-registration returned a different family")
	}
	if _, err := r.Gauge("same", ""); err == nil {
		t.Fatal("type change accepted")
	}
}

func TestExposeFormat(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("qpu_jobs_total", "Jobs executed.")
	c.Inc(Labels{"queue": "prod", "user": "alice"}, 7)
	g := r.MustGauge("qpu_rabi_freq", "Calibrated Rabi frequency.")
	g.Set(nil, 12.57)
	h := r.MustHistogram("qpu_wait_seconds", "Queue wait.", []float64{1, 10})
	h.Observe(nil, 0.5)
	h.Observe(nil, 20)

	out := r.Expose()
	for _, want := range []string{
		"# HELP qpu_jobs_total Jobs executed.",
		"# TYPE qpu_jobs_total counter",
		`qpu_jobs_total{queue="prod",user="alice"} 7`,
		"# TYPE qpu_rabi_freq gauge",
		"qpu_rabi_freq 12.57",
		"# TYPE qpu_wait_seconds histogram",
		`qpu_wait_seconds_bucket{le="1"} 1`,
		`qpu_wait_seconds_bucket{le="10"} 1`,
		`qpu_wait_seconds_bucket{le="+Inf"} 2`,
		"qpu_wait_seconds_sum 20.5",
		"qpu_wait_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestExposeLabelsSorted(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("m", "")
	c.Inc(Labels{"z": "1", "a": "2"}, 1)
	out := r.Expose()
	if !strings.Contains(out, `m{a="2",z="1"} 1`) {
		t.Fatalf("labels not sorted:\n%s", out)
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("races", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc(Labels{"w": "x"}, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(Labels{"w": "x"}); got != 8000 {
		t.Fatalf("lost updates: %g", got)
	}
}

func TestLabelsKeyCanonical(t *testing.T) {
	a := Labels{"x": "1", "y": "2"}
	b := Labels{"y": "2", "x": "1"}
	if a.key() != b.key() {
		t.Fatal("label key not order-independent")
	}
	if (Labels{}).key() != "" {
		t.Fatal("empty labels key")
	}
}

func TestHistogramSum(t *testing.T) {
	reg := NewRegistry()
	h := reg.MustHistogram("sum_test", "sum accessor", []float64{1, 10})
	labels := Labels{"class": "dev"}
	for _, v := range []float64{0.5, 2, 7.5} {
		h.Observe(labels, v)
	}
	if got := h.HistogramSum(labels); got != 10 {
		t.Fatalf("HistogramSum = %g, want 10", got)
	}
	if got := h.HistogramSum(Labels{"class": "other"}); got != 0 {
		t.Fatalf("HistogramSum of absent series = %g, want 0", got)
	}
	// Mean derivation: sum/count.
	if mean := h.HistogramSum(labels) / float64(h.HistogramCount(labels)); mean != 10.0/3 {
		t.Fatalf("derived mean = %g", mean)
	}
}
