package telemetry

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// DriftState classifies a monitored calibration parameter.
type DriftState int

const (
	// DriftOK means the parameter tracks its baseline.
	DriftOK DriftState = iota
	// DriftWarning means sustained deviation beyond the warn threshold.
	DriftWarning
	// DriftCritical means deviation beyond the critical threshold; the
	// operations team should schedule recalibration.
	DriftCritical
)

func (s DriftState) String() string {
	switch s {
	case DriftOK:
		return "ok"
	case DriftWarning:
		return "warning"
	case DriftCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// DriftDetector tracks one calibration parameter with a dual EWMA: a slow
// baseline and a fast tracker. Sustained relative deviation between them
// flags drift — the "automated drift detection" the paper lists as the next
// step for QPU observability. It is deliberately simple, dependency-free and
// cheap enough to run per-parameter per-sample.
type DriftDetector struct {
	// BaselineAlpha is the slow EWMA coefficient (default 0.01).
	BaselineAlpha float64
	// TrackerAlpha is the fast EWMA coefficient (default 0.3).
	TrackerAlpha float64
	// WarnThreshold is the relative deviation that triggers a warning
	// (default 0.05 = 5%).
	WarnThreshold float64
	// CriticalThreshold triggers critical state (default 0.15).
	CriticalThreshold float64

	mu       sync.Mutex
	baseline float64
	tracker  float64
	n        int
}

// NewDriftDetector returns a detector with production defaults.
func NewDriftDetector() *DriftDetector {
	return &DriftDetector{
		BaselineAlpha:     0.01,
		TrackerAlpha:      0.3,
		WarnThreshold:     0.05,
		CriticalThreshold: 0.15,
	}
}

// Observe folds in a sample and returns the resulting state.
func (d *DriftDetector) Observe(v float64) DriftState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n == 0 {
		d.baseline = v
		d.tracker = v
		d.n = 1
		return DriftOK
	}
	d.n++
	d.tracker = d.TrackerAlpha*v + (1-d.TrackerAlpha)*d.tracker
	// The baseline only absorbs samples while the system is healthy, so a
	// real drift does not silently become the new normal.
	if d.stateLocked() == DriftOK {
		d.baseline = d.BaselineAlpha*v + (1-d.BaselineAlpha)*d.baseline
	}
	return d.stateLocked()
}

// Deviation returns the current relative deviation |tracker-baseline|/|baseline|.
func (d *DriftDetector) Deviation() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.deviationLocked()
}

func (d *DriftDetector) deviationLocked() float64 {
	if d.baseline == 0 {
		if d.tracker == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(d.tracker-d.baseline) / math.Abs(d.baseline)
}

// State returns the current classification.
func (d *DriftDetector) State() DriftState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stateLocked()
}

func (d *DriftDetector) stateLocked() DriftState {
	dev := d.deviationLocked()
	switch {
	case dev >= d.CriticalThreshold:
		return DriftCritical
	case dev >= d.WarnThreshold:
		return DriftWarning
	default:
		return DriftOK
	}
}

// Baseline returns the slow baseline estimate.
func (d *DriftDetector) Baseline() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.baseline
}

// AlertSeverity grades alert rules.
type AlertSeverity int

const (
	// SeverityWarning pages nobody; it lands on the dashboard.
	SeverityWarning AlertSeverity = iota
	// SeverityCritical is operator-actionable.
	SeverityCritical
)

func (s AlertSeverity) String() string {
	if s == SeverityCritical {
		return "critical"
	}
	return "warning"
}

// AlertRule fires when a predicate holds over the latest sample of a series.
type AlertRule struct {
	Name     string
	Series   string
	Labels   Labels
	Severity AlertSeverity
	// Predicate returns true when the rule should fire for the value.
	Predicate func(v float64) bool
	// For requires the predicate to hold this long before firing,
	// debouncing transients the way Prometheus's `for:` clause does.
	For time.Duration
}

// Alert is a fired rule instance.
type Alert struct {
	Rule     string        `json:"rule"`
	Severity string        `json:"severity"`
	At       time.Duration `json:"at"`
	Value    float64       `json:"value"`
	Message  string        `json:"message"`
}

// AlertManager evaluates rules against a TSDB.
type AlertManager struct {
	db    *TSDB
	mu    sync.Mutex
	rules []*AlertRule
	// pendingSince tracks when each rule's predicate first became true.
	pendingSince map[string]time.Duration
	firing       map[string]bool
	history      []Alert
}

// NewAlertManager returns a manager bound to the database.
func NewAlertManager(db *TSDB) *AlertManager {
	return &AlertManager{
		db:           db,
		pendingSince: make(map[string]time.Duration),
		firing:       make(map[string]bool),
	}
}

// AddRule registers a rule; duplicate names are rejected.
func (am *AlertManager) AddRule(r *AlertRule) error {
	if r.Name == "" || r.Predicate == nil || r.Series == "" {
		return fmt.Errorf("telemetry: alert rule needs name, series and predicate")
	}
	am.mu.Lock()
	defer am.mu.Unlock()
	for _, existing := range am.rules {
		if existing.Name == r.Name {
			return fmt.Errorf("telemetry: duplicate alert rule %q", r.Name)
		}
	}
	am.rules = append(am.rules, r)
	return nil
}

// Evaluate checks every rule against the latest samples at the given
// simulation time and returns alerts that transitioned into firing.
func (am *AlertManager) Evaluate(now time.Duration) []Alert {
	am.mu.Lock()
	defer am.mu.Unlock()
	var fired []Alert
	for _, r := range am.rules {
		p, ok := am.db.Latest(r.Series, r.Labels)
		if !ok {
			continue
		}
		if !r.Predicate(p.Value) {
			delete(am.pendingSince, r.Name)
			am.firing[r.Name] = false
			continue
		}
		since, pending := am.pendingSince[r.Name]
		if !pending {
			am.pendingSince[r.Name] = now
			since = now
		}
		if now-since >= r.For && !am.firing[r.Name] {
			am.firing[r.Name] = true
			a := Alert{
				Rule:     r.Name,
				Severity: r.Severity.String(),
				At:       now,
				Value:    p.Value,
				Message:  fmt.Sprintf("%s: %s=%g", r.Name, r.Series, p.Value),
			}
			am.history = append(am.history, a)
			fired = append(fired, a)
		}
	}
	return fired
}

// Firing lists currently-firing rule names, sorted by registration order.
func (am *AlertManager) Firing() []string {
	am.mu.Lock()
	defer am.mu.Unlock()
	var out []string
	for _, r := range am.rules {
		if am.firing[r.Name] {
			out = append(out, r.Name)
		}
	}
	return out
}

// History returns all alerts fired since creation.
func (am *AlertManager) History() []Alert {
	am.mu.Lock()
	defer am.mu.Unlock()
	return append([]Alert(nil), am.history...)
}
