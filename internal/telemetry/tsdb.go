package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Point is one timestamped sample.
type Point struct {
	At    time.Duration `json:"at"`
	Value float64       `json:"value"`
}

// tsSeries is an append-mostly ordered sample buffer. Live samples are
// points[start:]; eviction advances start and compacts only when the dead
// prefix dominates the buffer, so steady-state retention eviction costs
// amortized O(1) per append instead of one full copy per sample.
type tsSeries struct {
	name   string
	labels Labels
	points []Point
	start  int
}

// live returns the non-evicted samples.
func (s *tsSeries) live() []Point { return s.points[s.start:] }

// TSDB is an in-memory time-series database with per-database retention and
// on-demand downsampling — the InfluxDB stand-in behind the observability
// stack. Timestamps are simulation-time offsets so the device model and the
// experiments share one time base.
type TSDB struct {
	mu        sync.Mutex
	series    map[string]*tsSeries
	retention time.Duration
	maxPoints int
}

// NewTSDB returns a database keeping up to retention of history per series
// (0 disables age-based eviction) and at most maxPoints samples per series
// (0 defaults to 100000).
func NewTSDB(retention time.Duration, maxPoints int) *TSDB {
	if maxPoints <= 0 {
		maxPoints = 100000
	}
	return &TSDB{series: make(map[string]*tsSeries), retention: retention, maxPoints: maxPoints}
}

func seriesKey(name string, labels Labels) string {
	return name + "|" + labels.key()
}

// Append stores a sample. Out-of-order samples are inserted in place, which
// happens when multiple producers share the database.
func (db *TSDB) Append(name string, labels Labels, at time.Duration, value float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := seriesKey(name, labels)
	s, ok := db.series[key]
	if !ok {
		copied := make(Labels, len(labels))
		for k, v := range labels {
			copied[k] = v
		}
		s = &tsSeries{name: name, labels: copied}
		db.series[key] = s
	}
	if live := s.live(); len(live) > 0 && live[len(live)-1].At > at {
		// Rare out-of-order insert: binary search the position.
		idx := s.start + sort.Search(len(live), func(i int) bool { return live[i].At > at })
		s.points = append(s.points, Point{})
		copy(s.points[idx+1:], s.points[idx:])
		s.points[idx] = Point{At: at, Value: value}
	} else {
		s.points = append(s.points, Point{At: at, Value: value})
	}
	db.evictLocked(s, at)
}

func (db *TSDB) evictLocked(s *tsSeries, now time.Duration) {
	live := s.live()
	drop := 0
	if db.retention > 0 {
		cut := now - db.retention
		drop = sort.Search(len(live), func(i int) bool { return live[i].At >= cut })
	}
	if over := len(live) - drop - db.maxPoints; over > 0 {
		drop += over
	}
	if drop == 0 {
		return
	}
	s.start += drop
	// Compact once the dead prefix exceeds half the buffer: each surviving
	// point is copied at most once per halving, keeping eviction amortized
	// O(1) per append while still releasing memory.
	if s.start > len(s.points)/2 {
		n := copy(s.points, s.points[s.start:])
		s.points = s.points[:n]
		s.start = 0
	}
}

// Query returns samples of a series within [from, to], inclusive.
func (db *TSDB) Query(name string, labels Labels, from, to time.Duration) []Point {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[seriesKey(name, labels)]
	if !ok {
		return nil
	}
	live := s.live()
	lo := sort.Search(len(live), func(i int) bool { return live[i].At >= from })
	hi := sort.Search(len(live), func(i int) bool { return live[i].At > to })
	out := make([]Point, hi-lo)
	copy(out, live[lo:hi])
	return out
}

// Latest returns the most recent sample of a series.
func (db *TSDB) Latest(name string, labels Labels) (Point, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[seriesKey(name, labels)]
	if !ok || len(s.live()) == 0 {
		return Point{}, false
	}
	live := s.live()
	return live[len(live)-1], true
}

// SeriesNames lists distinct series as "name|labelkey" strings, sorted.
func (db *TSDB) SeriesNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.series))
	for k := range db.series {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// AggregateKind selects the reduction used by Downsample.
type AggregateKind int

const (
	// AggMean averages samples in the window.
	AggMean AggregateKind = iota
	// AggMax keeps the window maximum.
	AggMax
	// AggMin keeps the window minimum.
	AggMin
	// AggLast keeps the most recent sample in the window.
	AggLast
	// AggCount counts samples in the window.
	AggCount
)

// Downsample reduces a range query into fixed windows of the given width,
// emitting one point per non-empty window stamped at the window start.
func (db *TSDB) Downsample(name string, labels Labels, from, to, window time.Duration, kind AggregateKind) []Point {
	if window <= 0 {
		return db.Query(name, labels, from, to)
	}
	raw := db.Query(name, labels, from, to)
	if len(raw) == 0 {
		return nil
	}
	var out []Point
	wStart := from
	var bucket []float64
	flush := func() {
		if len(bucket) == 0 {
			return
		}
		var v float64
		switch kind {
		case AggMean:
			for _, x := range bucket {
				v += x
			}
			v /= float64(len(bucket))
		case AggMax:
			v = bucket[0]
			for _, x := range bucket[1:] {
				if x > v {
					v = x
				}
			}
		case AggMin:
			v = bucket[0]
			for _, x := range bucket[1:] {
				if x < v {
					v = x
				}
			}
		case AggLast:
			v = bucket[len(bucket)-1]
		case AggCount:
			v = float64(len(bucket))
		}
		out = append(out, Point{At: wStart, Value: v})
		bucket = bucket[:0]
	}
	for _, p := range raw {
		for p.At >= wStart+window {
			flush()
			wStart += window
		}
		bucket = append(bucket, p.Value)
	}
	flush()
	return out
}

// Stats summarizes a range: count, mean, min, max, stddev.
type Stats struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
}

// RangeStats computes summary statistics over [from, to].
func (db *TSDB) RangeStats(name string, labels Labels, from, to time.Duration) Stats {
	pts := db.Query(name, labels, from, to)
	if len(pts) == 0 {
		return Stats{}
	}
	st := Stats{Count: len(pts), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumSq float64
	for _, p := range pts {
		sum += p.Value
		sumSq += p.Value * p.Value
		if p.Value < st.Min {
			st.Min = p.Value
		}
		if p.Value > st.Max {
			st.Max = p.Value
		}
	}
	st.Mean = sum / float64(st.Count)
	variance := sumSq/float64(st.Count) - st.Mean*st.Mean
	if variance > 0 {
		st.StdDev = math.Sqrt(variance)
	}
	return st
}

// String describes the database for debugging.
func (db *TSDB) String() string {
	db.mu.Lock()
	defer db.mu.Unlock()
	total := 0
	for _, s := range db.series {
		total += len(s.live())
	}
	return fmt.Sprintf("tsdb{series=%d points=%d}", len(db.series), total)
}
