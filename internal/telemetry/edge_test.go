package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestHistogramZeroObservationExposition pins the exposition of a histogram
// series that exists but has never observed: every bucket (including +Inf),
// the sum and the count must render as literal zeros, and the quantile
// estimator must say NaN rather than inventing a value. The daemon creates
// wait-histogram series at Bind time — before the first job completes — so
// the scrape page always crosses this state.
func TestHistogramZeroObservationExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.MustHistogram("edge_wait_seconds", "zero-observation histogram", []float64{1, 10})
	labels := Labels{"class": "production"}
	if b := h.Bind(labels); b == nil {
		t.Fatal("Bind returned nil for a live metric")
	}

	out := reg.Expose()
	for _, want := range []string{
		`edge_wait_seconds_bucket{class="production",le="1"} 0`,
		`edge_wait_seconds_bucket{class="production",le="10"} 0`,
		`edge_wait_seconds_bucket{class="production",le="+Inf"} 0`,
		`edge_wait_seconds_sum{class="production"} 0`,
		`edge_wait_seconds_count{class="production"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if q := h.HistogramQuantile(labels, 0.99); !math.IsNaN(q) {
		t.Errorf("zero-observation quantile = %g, want NaN", q)
	}
	if c := h.HistogramCount(labels); c != 0 {
		t.Errorf("zero-observation count = %d", c)
	}
}

// TestBoundSeriesNilSafety pins the disabled-telemetry contract: binding a
// nil metric family yields a nil BoundSeries, and every update method on it
// is a silent no-op. Call sites in the dispatch hot path bind
// unconditionally and rely on this instead of branching on "is telemetry
// on".
func TestBoundSeriesNilSafety(t *testing.T) {
	var m *Metric
	b := m.Bind(Labels{"class": "dev"})
	if b != nil {
		t.Fatal("nil metric Bind returned a non-nil BoundSeries")
	}
	// None of these may panic.
	b.Inc(1)
	b.Set(2)
	b.Add(3)
	b.Observe(4)

	// A registry with no metric registered yields nil via Get — the same
	// nil-receiver path a daemon without a Registry walks.
	reg := NewRegistry()
	if got := reg.Get("never_registered"); got != nil {
		t.Fatalf("Get on empty registry = %v, want nil", got)
	}
	reg.Get("never_registered").Bind(Labels{"x": "y"}).Observe(1)
}

// TestTSDBRetentionCompactionThreshold walks retention eviction across the
// buffer-compaction boundary (compact when the dead prefix exceeds half the
// buffer) and checks the surviving window is exact on both sides of it. The
// off-by-one worth pinning: at start == len/2 the series must NOT compact
// yet, one more eviction tips it.
func TestTSDBRetentionCompactionThreshold(t *testing.T) {
	const retention = 10 * time.Second
	db := NewTSDB(retention, 0)
	labels := Labels{"device": "qpu-0"}

	at := func(i int) time.Duration { return time.Duration(i) * time.Second }
	for i := 0; i < 32; i++ {
		db.Append("edge_metric", labels, at(i), float64(i))

		s := db.series[seriesKey("edge_metric", labels)]
		if s.start > len(s.points)/2 {
			t.Fatalf("after append %d: dead prefix %d exceeds half of %d points without compacting",
				i, s.start, len(s.points))
		}
		// The live window must always be exactly the retained range,
		// compacted or not.
		cut := at(i) - retention
		want := 0
		for j := 0; j <= i; j++ {
			if at(j) >= cut {
				want++
			}
		}
		got := db.Query("edge_metric", labels, 0, at(i))
		if len(got) != want {
			t.Fatalf("after append %d: %d live points, want %d", i, len(got), want)
		}
		for k, p := range got {
			if wantAt := at(i - want + 1 + k); p.At != wantAt || p.Value != wantAt.Seconds() {
				t.Fatalf("after append %d: point %d = {%s, %g}, want {%s, %g}",
					i, k, p.At, p.Value, wantAt, wantAt.Seconds())
			}
		}
	}

	// The series must actually have compacted at least once over the run —
	// otherwise the loop above never exercised the copy-down path.
	s := db.series[seriesKey("edge_metric", labels)]
	if len(s.points) > 22 {
		t.Fatalf("series buffer never compacted: %d points for an 11-point window", len(s.points))
	}
}
