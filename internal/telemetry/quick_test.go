package telemetry

import (
	"testing"
	"testing/quick"
	"time"
)

// TestTSDBOrderingProperty: regardless of insertion order, queries return
// points sorted by timestamp and Latest returns the maximum timestamp.
func TestTSDBOrderingProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		if len(stamps) == 0 {
			return true
		}
		db := NewTSDB(0, 0)
		var maxAt time.Duration
		for i, s := range stamps {
			at := time.Duration(s) * time.Millisecond
			db.Append("x", nil, at, float64(i))
			if at >= maxAt {
				maxAt = at
			}
		}
		pts := db.Query("x", nil, 0, time.Hour)
		if len(pts) != len(stamps) {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].At < pts[i-1].At {
				return false
			}
		}
		last, ok := db.Latest("x", nil)
		return ok && last.At == maxAt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTSDBRangeSubsetProperty: a sub-range query returns a subset of the
// full-range query, and every point is inside the requested window.
func TestTSDBRangeSubsetProperty(t *testing.T) {
	f := func(stamps []uint16, loRaw, hiRaw uint16) bool {
		db := NewTSDB(0, 0)
		for i, s := range stamps {
			db.Append("x", nil, time.Duration(s)*time.Millisecond, float64(i))
		}
		lo := time.Duration(loRaw) * time.Millisecond
		hi := time.Duration(hiRaw) * time.Millisecond
		if lo > hi {
			lo, hi = hi, lo
		}
		sub := db.Query("x", nil, lo, hi)
		all := db.Query("x", nil, 0, time.Hour)
		if len(sub) > len(all) {
			return false
		}
		for _, p := range sub {
			if p.At < lo || p.At > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDownsampleWeightProperty: AggCount windows sum to the total number of
// in-range points for any sample set.
func TestDownsampleWeightProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		db := NewTSDB(0, 0)
		for i, s := range stamps {
			db.Append("x", nil, time.Duration(s)*time.Millisecond, float64(i))
		}
		windows := db.Downsample("x", nil, 0, 66*time.Second, time.Second, AggCount)
		var total float64
		for _, w := range windows {
			total += w.Value
		}
		return int(total) == len(db.Query("x", nil, 0, 66*time.Second))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramQuantileMonotoneProperty: quantiles are monotone in q.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []uint8) bool {
		if len(samples) == 0 {
			return true
		}
		r := NewRegistry()
		h := r.MustHistogram("h", "", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
		for _, s := range samples {
			h.Observe(nil, float64(s))
		}
		prev := -1.0
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			v := h.HistogramQuantile(nil, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDriftDetectorScaleInvarianceProperty: the detector's state depends on
// relative deviation, so scaling the whole signal leaves it unchanged.
func TestDriftDetectorScaleInvarianceProperty(t *testing.T) {
	f := func(scaleRaw uint8, step uint8) bool {
		scale := float64(scaleRaw%100) + 1
		stepFrac := float64(step%30) / 100 // 0–29% step
		run := func(s float64) DriftState {
			d := NewDriftDetector()
			for i := 0; i < 150; i++ {
				d.Observe(10 * s)
			}
			var st DriftState
			for i := 0; i < 30; i++ {
				st = d.Observe(10 * s * (1 + stepFrac))
			}
			return st
		}
		return run(1) == run(scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
