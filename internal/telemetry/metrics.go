// Package telemetry implements the observability stack of the HPC-QC
// environment (paper §3.6): a metrics registry with Prometheus text
// exposition, an in-memory time-series database in the InfluxDB mould
// (retention, downsampling, range queries), calibration-drift detection, and
// alert rules. Using the standard exposition format means a hosting site's
// existing Prometheus/Grafana stack scrapes the QPU like any other node.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// MetricType enumerates supported metric kinds.
type MetricType int

const (
	// TypeCounter is a monotonically increasing value.
	TypeCounter MetricType = iota
	// TypeGauge is a value that can go up and down.
	TypeGauge
	// TypeHistogram accumulates observations into cumulative buckets.
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Labels is an immutable-by-convention label set.
type Labels map[string]string

// key renders labels canonically (sorted) for map indexing and exposition.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, l[k])
	}
	return sb.String()
}

// series is one labelled time series inside a metric family.
type series struct {
	labels Labels
	value  float64
	// histogram state
	buckets []float64 // cumulative counts per bound
	sum     float64
	count   uint64
}

// Metric is a family of labelled series sharing a name, type and help text.
type Metric struct {
	Name   string
	Type   MetricType
	Help   string
	bounds []float64 // histogram bucket upper bounds, ascending

	mu     sync.Mutex
	series map[string]*series
}

func (m *Metric) getSeries(l Labels) *series {
	k := l.key()
	s, ok := m.series[k]
	if !ok {
		copied := make(Labels, len(l))
		for kk, vv := range l {
			copied[kk] = vv
		}
		s = &series{labels: copied}
		if m.Type == TypeHistogram {
			s.buckets = make([]float64, len(m.bounds))
		}
		m.series[k] = s
	}
	return s
}

// Inc adds delta to a counter series. Negative deltas are ignored: counters
// are monotone by definition.
func (m *Metric) Inc(l Labels, delta float64) {
	if m.Type != TypeCounter || delta < 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.getSeries(l).value += delta
}

// Set assigns a gauge series.
func (m *Metric) Set(l Labels, v float64) {
	if m.Type != TypeGauge {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.getSeries(l).value = v
}

// Add adds to a gauge series.
func (m *Metric) Add(l Labels, delta float64) {
	if m.Type != TypeGauge {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.getSeries(l).value += delta
}

// Observe records a histogram observation.
func (m *Metric) Observe(l Labels, v float64) {
	if m.Type != TypeHistogram {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.getSeries(l)
	s.sum += v
	s.count++
	for i, bound := range m.bounds {
		if v <= bound {
			s.buckets[i]++
		}
	}
}

// BoundSeries is a pre-resolved (metric family, label set) pair. Hot paths
// that update the same labelled series once per job — dispatch loops, replay
// analyzers — pay the canonical label-key rendering (sort + quote + map
// lookup) once at Bind time instead of on every update. A nil BoundSeries is
// valid and drops all updates, so call sites can bind unconditionally even
// when telemetry is disabled.
type BoundSeries struct {
	m *Metric
	s *series
}

// Bind resolves (and creates, if absent) the series for a label set. A nil
// receiver yields a nil BoundSeries whose update methods no-op.
func (m *Metric) Bind(l Labels) *BoundSeries {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	s := m.getSeries(l)
	m.mu.Unlock()
	return &BoundSeries{m: m, s: s}
}

// Inc adds delta to a bound counter series (negative deltas are ignored).
func (b *BoundSeries) Inc(delta float64) {
	if b == nil || b.m.Type != TypeCounter || delta < 0 {
		return
	}
	b.m.mu.Lock()
	b.s.value += delta
	b.m.mu.Unlock()
}

// Set assigns a bound gauge series.
func (b *BoundSeries) Set(v float64) {
	if b == nil || b.m.Type != TypeGauge {
		return
	}
	b.m.mu.Lock()
	b.s.value = v
	b.m.mu.Unlock()
}

// Add adds to a bound gauge series.
func (b *BoundSeries) Add(delta float64) {
	if b == nil || b.m.Type != TypeGauge {
		return
	}
	b.m.mu.Lock()
	b.s.value += delta
	b.m.mu.Unlock()
}

// Observe records a histogram observation on a bound series.
func (b *BoundSeries) Observe(v float64) {
	if b == nil || b.m.Type != TypeHistogram {
		return
	}
	b.m.mu.Lock()
	b.s.sum += v
	b.s.count++
	for i, bound := range b.m.bounds {
		if v <= bound {
			b.s.buckets[i]++
		}
	}
	b.m.mu.Unlock()
}

// Value returns the current value of a counter/gauge series (0 if absent).
func (m *Metric) Value(l Labels) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.series[l.key()]; ok {
		return s.value
	}
	return 0
}

// HistogramCount returns the observation count of a histogram series.
func (m *Metric) HistogramCount(l Labels) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.series[l.key()]; ok {
		return s.count
	}
	return 0
}

// HistogramSum returns the running sum of a histogram series' observations,
// so consumers can derive means (sum/count) without re-aggregating samples.
func (m *Metric) HistogramSum(l Labels) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.series[l.key()]; ok {
		return s.sum
	}
	return 0
}

// HistogramQuantile estimates quantile q ∈ [0,1] by linear interpolation
// within the owning bucket, Prometheus-style. Returns NaN with no data.
func (m *Metric) HistogramQuantile(l Labels, q float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.series[l.key()]
	if !ok || s.count == 0 {
		return math.NaN()
	}
	target := q * float64(s.count)
	prevBound, prevCount := 0.0, 0.0
	for i, bound := range m.bounds {
		if s.buckets[i] >= target {
			width := bound - prevBound
			inBucket := s.buckets[i] - prevCount
			if inBucket == 0 {
				return bound
			}
			return prevBound + width*(target-prevCount)/inBucket
		}
		prevBound, prevCount = bound, s.buckets[i]
	}
	if len(m.bounds) > 0 {
		return m.bounds[len(m.bounds)-1]
	}
	return math.NaN()
}

// Registry holds metric families and renders them in Prometheus text format.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*Metric
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*Metric)}
}

func (r *Registry) register(name, help string, t MetricType, bounds []float64) (*Metric, error) {
	if name == "" || !validMetricName(name) {
		return nil, fmt.Errorf("telemetry: invalid metric name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.metrics[name]; ok {
		if existing.Type != t {
			return nil, fmt.Errorf("telemetry: metric %q re-registered with different type", name)
		}
		return existing, nil
	}
	m := &Metric{Name: name, Type: t, Help: help, bounds: bounds, series: make(map[string]*series)}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m, nil
}

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string) (*Metric, error) {
	return r.register(name, help, TypeCounter, nil)
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string) (*Metric, error) {
	return r.register(name, help, TypeGauge, nil)
}

// Histogram registers (or returns) a histogram family with the given
// ascending bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) (*Metric, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("telemetry: histogram %q needs at least one bucket", name)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("telemetry: histogram %q buckets not ascending", name)
		}
	}
	return r.register(name, help, TypeHistogram, bounds)
}

// MustCounter is Counter, panicking on registration errors; for package-level
// initialization where the name is a compile-time constant.
func (r *Registry) MustCounter(name, help string) *Metric {
	m, err := r.Counter(name, help)
	if err != nil {
		panic(err)
	}
	return m
}

// MustGauge is Gauge, panicking on registration errors.
func (r *Registry) MustGauge(name, help string) *Metric {
	m, err := r.Gauge(name, help)
	if err != nil {
		panic(err)
	}
	return m
}

// MustHistogram is Histogram, panicking on registration errors.
func (r *Registry) MustHistogram(name, help string, bounds []float64) *Metric {
	m, err := r.Histogram(name, help, bounds)
	if err != nil {
		panic(err)
	}
	return m
}

// Get returns a registered metric family, or nil.
func (r *Registry) Get(name string) *Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[name]
}

// Expose renders every family in Prometheus text exposition format 0.0.4.
func (r *Registry) Expose() string {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()

	var sb strings.Builder
	for _, name := range names {
		m := r.Get(name)
		if m == nil {
			continue
		}
		fmt.Fprintf(&sb, "# HELP %s %s\n", m.Name, m.Help)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", m.Name, m.Type)
		m.mu.Lock()
		keys := make([]string, 0, len(m.series))
		for k := range m.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := m.series[k]
			switch m.Type {
			case TypeHistogram:
				for i, bound := range m.bounds {
					fmt.Fprintf(&sb, "%s_bucket%s %s\n", m.Name, labelsWithLE(s.labels, formatFloat(bound)), formatFloat(s.buckets[i]))
				}
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", m.Name, labelsWithLE(s.labels, "+Inf"), s.count)
				fmt.Fprintf(&sb, "%s_sum%s %s\n", m.Name, renderLabels(s.labels), formatFloat(s.sum))
				fmt.Fprintf(&sb, "%s_count%s %d\n", m.Name, renderLabels(s.labels), s.count)
			default:
				fmt.Fprintf(&sb, "%s%s %s\n", m.Name, renderLabels(s.labels), formatFloat(s.value))
			}
		}
		m.mu.Unlock()
	}
	return sb.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	return "{" + l.key() + "}"
}

func labelsWithLE(l Labels, le string) string {
	inner := l.key()
	if inner != "" {
		inner += ","
	}
	return "{" + inner + fmt.Sprintf("le=%q", le) + "}"
}

func validMetricName(name string) bool {
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
