package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestTSDBAppendQuery(t *testing.T) {
	db := NewTSDB(0, 0)
	for i := 0; i < 10; i++ {
		db.Append("temp", Labels{"dev": "qpu1"}, time.Duration(i)*time.Second, float64(i))
	}
	pts := db.Query("temp", Labels{"dev": "qpu1"}, 2*time.Second, 5*time.Second)
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Value != 2 || pts[3].Value != 5 {
		t.Fatalf("range wrong: %v", pts)
	}
	// Unknown series and labels return nil.
	if db.Query("nope", nil, 0, time.Hour) != nil {
		t.Fatal("unknown series returned data")
	}
	if db.Query("temp", Labels{"dev": "other"}, 0, time.Hour) != nil {
		t.Fatal("unknown labels returned data")
	}
}

func TestTSDBLatest(t *testing.T) {
	db := NewTSDB(0, 0)
	if _, ok := db.Latest("x", nil); ok {
		t.Fatal("latest on empty db")
	}
	db.Append("x", nil, time.Second, 1)
	db.Append("x", nil, 3*time.Second, 9)
	p, ok := db.Latest("x", nil)
	if !ok || p.Value != 9 || p.At != 3*time.Second {
		t.Fatalf("latest = %+v ok=%v", p, ok)
	}
}

func TestTSDBOutOfOrderInsert(t *testing.T) {
	db := NewTSDB(0, 0)
	db.Append("x", nil, 5*time.Second, 5)
	db.Append("x", nil, 1*time.Second, 1)
	db.Append("x", nil, 3*time.Second, 3)
	pts := db.Query("x", nil, 0, 10*time.Second)
	if len(pts) != 3 {
		t.Fatalf("got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].At < pts[i-1].At {
			t.Fatalf("unordered: %v", pts)
		}
	}
}

func TestTSDBRetention(t *testing.T) {
	db := NewTSDB(10*time.Second, 0)
	for i := 0; i < 30; i++ {
		db.Append("x", nil, time.Duration(i)*time.Second, float64(i))
	}
	pts := db.Query("x", nil, 0, time.Hour)
	if len(pts) == 30 {
		t.Fatal("retention did not evict")
	}
	for _, p := range pts {
		if p.At < 19*time.Second {
			t.Fatalf("stale point survived: %+v", p)
		}
	}
}

func TestTSDBMaxPoints(t *testing.T) {
	db := NewTSDB(0, 5)
	for i := 0; i < 20; i++ {
		db.Append("x", nil, time.Duration(i)*time.Second, float64(i))
	}
	pts := db.Query("x", nil, 0, time.Hour)
	if len(pts) != 5 {
		t.Fatalf("got %d points, want 5", len(pts))
	}
	if pts[0].Value != 15 {
		t.Fatalf("kept wrong points: %v", pts)
	}
}

func TestDownsampleMean(t *testing.T) {
	db := NewTSDB(0, 0)
	// Two samples per 10s window: values (0,1), (2,3), ...
	for i := 0; i < 10; i++ {
		db.Append("x", nil, time.Duration(i*5)*time.Second, float64(i))
	}
	out := db.Downsample("x", nil, 0, 50*time.Second, 10*time.Second, AggMean)
	if len(out) != 5 {
		t.Fatalf("got %d windows", len(out))
	}
	if out[0].Value != 0.5 || out[1].Value != 2.5 {
		t.Fatalf("means wrong: %v", out)
	}
}

func TestDownsampleKinds(t *testing.T) {
	db := NewTSDB(0, 0)
	for i, v := range []float64{3, 1, 4, 1, 5} {
		db.Append("x", nil, time.Duration(i)*time.Second, v)
	}
	window := 10 * time.Second
	if got := db.Downsample("x", nil, 0, window, window, AggMax)[0].Value; got != 5 {
		t.Fatalf("max = %g", got)
	}
	if got := db.Downsample("x", nil, 0, window, window, AggMin)[0].Value; got != 1 {
		t.Fatalf("min = %g", got)
	}
	if got := db.Downsample("x", nil, 0, window, window, AggLast)[0].Value; got != 5 {
		t.Fatalf("last = %g", got)
	}
	if got := db.Downsample("x", nil, 0, window, window, AggCount)[0].Value; got != 5 {
		t.Fatalf("count = %g", got)
	}
}

func TestDownsampleZeroWindowPassthrough(t *testing.T) {
	db := NewTSDB(0, 0)
	db.Append("x", nil, time.Second, 1)
	out := db.Downsample("x", nil, 0, time.Hour, 0, AggMean)
	if len(out) != 1 || out[0].Value != 1 {
		t.Fatalf("passthrough = %v", out)
	}
}

func TestDownsampleEmpty(t *testing.T) {
	db := NewTSDB(0, 0)
	if out := db.Downsample("x", nil, 0, time.Hour, time.Second, AggMean); out != nil {
		t.Fatalf("empty downsample = %v", out)
	}
}

func TestRangeStats(t *testing.T) {
	db := NewTSDB(0, 0)
	for i, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		db.Append("x", nil, time.Duration(i)*time.Second, v)
	}
	st := db.RangeStats("x", nil, 0, time.Hour)
	if st.Count != 8 || st.Mean != 5 || st.Min != 2 || st.Max != 9 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.StdDev-2) > 1e-9 {
		t.Fatalf("stddev = %g, want 2", st.StdDev)
	}
	if st := db.RangeStats("missing", nil, 0, time.Hour); st.Count != 0 {
		t.Fatalf("missing stats = %+v", st)
	}
}

func TestSeriesNames(t *testing.T) {
	db := NewTSDB(0, 0)
	db.Append("b", nil, 0, 1)
	db.Append("a", Labels{"k": "v"}, 0, 1)
	names := db.SeriesNames()
	if len(names) != 2 || names[0] > names[1] {
		t.Fatalf("names = %v", names)
	}
}

// TestTSDBEvictionAmortized is the regression test for the offset-based
// eviction: steady-state retention must keep Append cheap (no full-buffer
// copy per sample), survive compaction, and keep queries, latest, and
// out-of-order inserts correct while the dead prefix comes and goes.
func TestTSDBEvictionAmortized(t *testing.T) {
	db := NewTSDB(100*time.Second, 0)
	labels := Labels{"k": "v"}

	// Push far enough past the retention window to force several
	// compaction cycles.
	const total = 5000
	for i := 0; i < total; i++ {
		db.Append("m", labels, time.Duration(i)*time.Second, float64(i))
	}
	now := time.Duration(total-1) * time.Second

	// Exactly the retention window survives: samples at 1 s spacing with
	// At >= now-100s inclusive is 101 points.
	pts := db.Query("m", labels, 0, now)
	if len(pts) != 101 {
		t.Fatalf("live points = %d, want 101", len(pts))
	}
	if pts[0].At != now-100*time.Second || pts[len(pts)-1].At != now {
		t.Fatalf("window = [%s, %s], want [%s, %s]", pts[0].At, pts[len(pts)-1].At, now-100*time.Second, now)
	}
	for i, p := range pts {
		if p.Value != float64(total-101+i) {
			t.Fatalf("pts[%d] = %v after compactions", i, p)
		}
	}
	if last, ok := db.Latest("m", labels); !ok || last.Value != float64(total-1) {
		t.Fatalf("latest = %v, %v", last, ok)
	}

	// Out-of-order insert into a series with a non-zero eviction offset
	// lands in sorted position.
	db.Append("m", labels, now-50*time.Second+time.Millisecond, -1)
	pts = db.Query("m", labels, now-50*time.Second, now-49*time.Second)
	if len(pts) != 3 || pts[1].Value != -1 {
		t.Fatalf("out-of-order insert misplaced: %v", pts)
	}
}

// TestTSDBAppendThroughput guards against the quadratic eviction returning:
// a million appends through a small retention window must finish quickly —
// under the old copy-per-append behaviour this takes minutes, not seconds.
func TestTSDBAppendThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput guard")
	}
	db := NewTSDB(time.Hour, 0)
	labels := Labels{"device": "qpu"}
	start := time.Now()
	const n = 1_000_000
	for i := 0; i < n; i++ {
		db.Append("m", labels, time.Duration(i)*time.Second, float64(i))
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("1M appends took %s — eviction is quadratic again", elapsed)
	}
	if pts := db.Query("m", labels, 0, time.Duration(n)*time.Second); len(pts) != 3601 {
		t.Fatalf("live points = %d, want 3601 (inclusive hour window)", len(pts))
	}
}
