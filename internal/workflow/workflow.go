// Package workflow is a small DAG workflow engine for hybrid
// quantum-classical campaigns — the "workflow engine integrations" the
// paper's discussion lists as a path to richer co-scheduling (§4). Steps
// declare dependencies; quantum steps execute through a core.Runtime (so
// they retarget with --qpu like everything else), classical steps are plain
// functions; the engine runs a deterministic topological order and exposes
// every step's outputs to its dependents.
package workflow

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hpcqc/internal/core"
	"hpcqc/internal/qir"
)

// Context carries shared state through one workflow execution.
type Context struct {
	// Runtime is the bound execution target for quantum steps.
	Runtime *core.Runtime

	mu      sync.Mutex
	results map[string]*qir.Result
	values  map[string]any
}

// Result returns a prior quantum step's result by step name.
func (c *Context) Result(step string) (*qir.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.results[step]
	return r, ok
}

// SetValue stores an arbitrary intermediate for dependents.
func (c *Context) SetValue(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.values[key] = v
}

// Value fetches an intermediate stored by an earlier step.
func (c *Context) Value(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.values[key]
	return v, ok
}

func (c *Context) setResult(step string, r *qir.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.results[step] = r
}

// StepFunc is a step body.
type StepFunc func(ctx *Context) error

// Step is one node of the DAG.
type Step struct {
	Name  string
	After []string
	Run   StepFunc
}

// Workflow is a buildable DAG of steps.
type Workflow struct {
	steps map[string]*Step
	order []string // insertion order, for deterministic scheduling
}

// New returns an empty workflow.
func New() *Workflow {
	return &Workflow{steps: make(map[string]*Step)}
}

// Add registers a step. Dependencies may be added before their targets; the
// full graph is validated at Execute.
func (w *Workflow) Add(s Step) error {
	if s.Name == "" {
		return errors.New("workflow: step needs a name")
	}
	if s.Run == nil {
		return fmt.Errorf("workflow: step %q needs a body", s.Name)
	}
	if _, dup := w.steps[s.Name]; dup {
		return fmt.Errorf("workflow: duplicate step %q", s.Name)
	}
	cp := s
	w.steps[s.Name] = &cp
	w.order = append(w.order, s.Name)
	return nil
}

// QuantumStep registers a step that builds a program (possibly from earlier
// results) and executes it on the workflow's runtime, storing its result
// under the step name.
func (w *Workflow) QuantumStep(name string, after []string, build func(ctx *Context) (*qir.Program, error)) error {
	return w.Add(Step{
		Name:  name,
		After: after,
		Run: func(ctx *Context) error {
			if ctx.Runtime == nil {
				return fmt.Errorf("workflow: step %q needs a runtime", name)
			}
			p, err := build(ctx)
			if err != nil {
				return fmt.Errorf("workflow: building %q: %w", name, err)
			}
			res, err := ctx.Runtime.Execute(p)
			if err != nil {
				return fmt.Errorf("workflow: executing %q: %w", name, err)
			}
			ctx.setResult(name, res)
			return nil
		},
	})
}

// ClassicalStep registers a pure-classical step.
func (w *Workflow) ClassicalStep(name string, after []string, fn StepFunc) error {
	return w.Add(Step{Name: name, After: after, Run: fn})
}

// topoOrder validates the graph and returns a deterministic topological
// order (Kahn's algorithm, insertion order among ready steps).
func (w *Workflow) topoOrder() ([]string, error) {
	indeg := make(map[string]int, len(w.steps))
	dependents := make(map[string][]string)
	for _, name := range w.order {
		s := w.steps[name]
		seen := make(map[string]bool, len(s.After))
		for _, dep := range s.After {
			if _, ok := w.steps[dep]; !ok {
				return nil, fmt.Errorf("workflow: step %q depends on unknown step %q", name, dep)
			}
			if dep == name {
				return nil, fmt.Errorf("workflow: step %q depends on itself", name)
			}
			if seen[dep] {
				continue
			}
			seen[dep] = true
			indeg[name]++
			dependents[dep] = append(dependents[dep], name)
		}
	}
	var ready []string
	for _, name := range w.order {
		if indeg[name] == 0 {
			ready = append(ready, name)
		}
	}
	var out []string
	for len(ready) > 0 {
		sort.SliceStable(ready, func(a, b int) bool {
			return indexOf(w.order, ready[a]) < indexOf(w.order, ready[b])
		})
		name := ready[0]
		ready = ready[1:]
		out = append(out, name)
		for _, dep := range dependents[name] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if len(out) != len(w.steps) {
		return nil, errors.New("workflow: dependency cycle detected")
	}
	return out, nil
}

func indexOf(order []string, name string) int {
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return len(order)
}

// Report summarizes one execution.
type Report struct {
	// Order is the executed step order.
	Order []string
	// Failed names the failing step, empty on success.
	Failed string
}

// Execute runs the workflow to completion against the runtime. Execution is
// sequential in topological order: deterministic, and honest about the
// single shared QPU underneath — concurrency across programs belongs to the
// middleware's scheduler, not the client.
func (w *Workflow) Execute(rt *core.Runtime) (*Context, *Report, error) {
	if len(w.steps) == 0 {
		return nil, nil, errors.New("workflow: no steps")
	}
	order, err := w.topoOrder()
	if err != nil {
		return nil, nil, err
	}
	ctx := &Context{
		Runtime: rt,
		results: make(map[string]*qir.Result),
		values:  make(map[string]any),
	}
	rep := &Report{}
	for _, name := range order {
		rep.Order = append(rep.Order, name)
		if err := w.steps[name].Run(ctx); err != nil {
			rep.Failed = name
			return ctx, rep, fmt.Errorf("workflow: step %q: %w", name, err)
		}
	}
	return ctx, rep, nil
}
