package workflow

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRandomDAGTopologicalOrderProperty: for any randomly generated DAG
// (edges only from lower- to higher-numbered steps, so acyclic by
// construction), Execute runs every step exactly once and never before any
// of its dependencies.
func TestRandomDAGTopologicalOrderProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%12 + 1
		rng := rand.New(rand.NewSource(seed))
		wf := New()
		deps := make([][]string, n)
		name := func(i int) string { return fmt.Sprintf("s%d", i) }
		for i := 0; i < n; i++ {
			// Each step depends on a random subset of earlier steps.
			for j := 0; j < i; j++ {
				if rng.Intn(3) == 0 {
					deps[i] = append(deps[i], name(j))
				}
			}
			if err := wf.ClassicalStep(name(i), deps[i], func(*Context) error { return nil }); err != nil {
				return false
			}
		}
		_, rep, err := wf.Execute(nil)
		if err != nil {
			return false
		}
		if len(rep.Order) != n {
			return false
		}
		pos := map[string]int{}
		for i, s := range rep.Order {
			if _, dup := pos[s]; dup {
				return false // ran twice
			}
			pos[s] = i
		}
		for i := 0; i < n; i++ {
			for _, d := range deps[i] {
				if pos[d] >= pos[name(i)] {
					return false // dependency ran after dependent
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomCycleAlwaysDetectedProperty: planting one back edge into an
// otherwise forward DAG always produces a cycle error and never a partial
// execution.
func TestRandomCycleAlwaysDetectedProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%8 + 3
		rng := rand.New(rand.NewSource(seed))
		wf := New()
		name := func(i int) string { return fmt.Sprintf("s%d", i) }
		// Chain s0 → s1 → … → s(n-1), then close a random back edge by
		// making some earlier step also depend on a later one.
		back := rng.Intn(n-1) + 1 // later step index
		early := rng.Intn(back)   // earlier step that will depend on it
		ran := 0
		for i := 0; i < n; i++ {
			deps := []string{}
			if i > 0 {
				deps = append(deps, name(i-1))
			}
			if i == early {
				deps = append(deps, name(back))
			}
			if err := wf.Add(Step{
				Name:  name(i),
				After: deps,
				Run:   func(*Context) error { ran++; return nil },
			}); err != nil {
				// Forward-declared dependencies may be rejected at Add
				// time; that also counts as detection as long as nothing
				// ever runs.
				continue
			}
		}
		if _, _, err := wf.Execute(nil); err == nil {
			return false
		}
		return ran == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
