package workflow

import (
	"errors"
	"math"
	"strings"
	"testing"

	"hpcqc/internal/core"
	"hpcqc/internal/emulator"
	"hpcqc/internal/qir"
)

func testRuntime(t *testing.T) *core.Runtime {
	t.Helper()
	rt, err := core.NewRuntimeFor("local-sv", "", []string{"QRMI_SEED=17"})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestAddValidation(t *testing.T) {
	w := New()
	if err := w.Add(Step{Name: "", Run: func(*Context) error { return nil }}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := w.Add(Step{Name: "a"}); err == nil {
		t.Fatal("nil body accepted")
	}
	ok := Step{Name: "a", Run: func(*Context) error { return nil }}
	if err := w.Add(ok); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(ok); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestTopologicalOrder(t *testing.T) {
	w := New()
	var order []string
	record := func(name string) StepFunc {
		return func(*Context) error {
			order = append(order, name)
			return nil
		}
	}
	// Diamond: a → (b, c) → d; add out of order.
	w.Add(Step{Name: "d", After: []string{"b", "c"}, Run: record("d")})
	w.Add(Step{Name: "b", After: []string{"a"}, Run: record("b")})
	w.Add(Step{Name: "c", After: []string{"a"}, Run: record("c")})
	w.Add(Step{Name: "a", Run: record("a")})
	_, rep, err := w.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["a"] > pos["b"] || pos["a"] > pos["c"] || pos["b"] > pos["d"] || pos["c"] > pos["d"] {
		t.Fatalf("order = %v", order)
	}
	if len(rep.Order) != 4 || rep.Failed != "" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCycleDetected(t *testing.T) {
	w := New()
	noop := func(*Context) error { return nil }
	w.Add(Step{Name: "a", After: []string{"b"}, Run: noop})
	w.Add(Step{Name: "b", After: []string{"a"}, Run: noop})
	if _, _, err := w.Execute(nil); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownAndSelfDependency(t *testing.T) {
	noop := func(*Context) error { return nil }
	w := New()
	w.Add(Step{Name: "a", After: []string{"ghost"}, Run: noop})
	if _, _, err := w.Execute(nil); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("err = %v", err)
	}
	w2 := New()
	w2.Add(Step{Name: "a", After: []string{"a"}, Run: noop})
	if _, _, err := w2.Execute(nil); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Fatalf("err = %v", err)
	}
	w3 := New()
	if _, _, err := w3.Execute(nil); err == nil {
		t.Fatal("empty workflow accepted")
	}
}

func TestFailureStopsExecution(t *testing.T) {
	w := New()
	ran := map[string]bool{}
	w.Add(Step{Name: "a", Run: func(*Context) error { ran["a"] = true; return nil }})
	w.Add(Step{Name: "b", After: []string{"a"}, Run: func(*Context) error { return errors.New("boom") }})
	w.Add(Step{Name: "c", After: []string{"b"}, Run: func(*Context) error { ran["c"] = true; return nil }})
	_, rep, err := w.Execute(nil)
	if err == nil || rep.Failed != "b" {
		t.Fatalf("err=%v report=%+v", err, rep)
	}
	if !ran["a"] || ran["c"] {
		t.Fatalf("ran = %v", ran)
	}
}

func TestHybridCampaignEndToEnd(t *testing.T) {
	// A realistic campaign: calibrate a π pulse by scanning durations
	// (quantum), pick the best (classical), run the real experiment with
	// the calibrated duration (quantum), then post-process (classical).
	rt := testRuntime(t)
	w := New()
	omega := 2 * math.Pi

	pulse := func(durNs float64, shots int) *qir.Program {
		seq := qir.NewAnalogSequence(qir.LinearRegister("one", 1, 10))
		seq.Add(qir.GlobalRydberg, qir.Pulse{
			Amplitude: qir.ConstantWaveform{Dur: durNs, Val: omega},
			Detuning:  qir.ConstantWaveform{Dur: durNs, Val: 0},
		})
		return qir.NewAnalogProgram(seq, shots)
	}

	durations := []float64{200, 350, 500, 650}
	for i, dur := range durations {
		dur := dur
		name := scanName(i)
		if err := w.QuantumStep(name, nil, func(*Context) (*qir.Program, error) {
			return pulse(dur, 200), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	scanSteps := make([]string, len(durations))
	for i := range durations {
		scanSteps[i] = scanName(i)
	}
	if err := w.ClassicalStep("pick-best", scanSteps, func(ctx *Context) error {
		best, bestP := 0.0, -1.0
		for i, dur := range durations {
			res, ok := ctx.Result(scanName(i))
			if !ok {
				return errors.New("missing scan result")
			}
			if p := res.Counts.Probability("1"); p > bestP {
				bestP = p
				best = dur
			}
		}
		ctx.SetValue("best_duration", best)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.QuantumStep("experiment", []string{"pick-best"}, func(ctx *Context) (*qir.Program, error) {
		v, ok := ctx.Value("best_duration")
		if !ok {
			return nil, errors.New("no calibration")
		}
		return pulse(v.(float64), 1000), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.ClassicalStep("analyze", []string{"experiment"}, func(ctx *Context) error {
		res, _ := ctx.Result("experiment")
		z, err := emulator.MeanZ(res.Counts, 0)
		if err != nil {
			return err
		}
		ctx.SetValue("final_z", z)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	ctx, rep, err := w.Execute(rt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Order) != 7 {
		t.Fatalf("executed %d steps", len(rep.Order))
	}
	// The scan must have picked the duration closest to the π pulse
	// (500 ns at Ω = 2π rad/µs).
	best, _ := ctx.Value("best_duration")
	if best.(float64) != 500 {
		t.Fatalf("calibration picked %v ns, want 500", best)
	}
	z, _ := ctx.Value("final_z")
	if z.(float64) > -0.9 {
		t.Fatalf("final ⟨Z⟩ = %v, want ≈ −1", z)
	}
}

func scanName(i int) string {
	return "scan-" + string(rune('a'+i))
}

func TestQuantumStepRequiresRuntime(t *testing.T) {
	w := New()
	w.QuantumStep("q", nil, func(*Context) (*qir.Program, error) {
		return qir.NewDigitalProgram(qir.NewCircuit(1).H(0), 10), nil
	})
	if _, _, err := w.Execute(nil); err == nil {
		t.Fatal("nil runtime accepted for quantum step")
	}
}
