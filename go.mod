module hpcqc

go 1.22
