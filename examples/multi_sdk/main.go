// multi_sdk demonstrates the paper's multi-SDK design (§2.3.1): three
// differently-shaped SDK frontends — pulse-level (Pulser-like), gate-model
// (Qiskit-like) and kernel/offload (CUDA-Q-like) — all lowering to the same
// IR and executing through the same runtime on the same emulator backend.
package main

import (
	"fmt"
	"log"
	"math"

	"hpcqc/internal/core"
	"hpcqc/internal/qir"
	"hpcqc/internal/sdk/gatesdk"
	"hpcqc/internal/sdk/kernelsdk"
	"hpcqc/internal/sdk/pulsesdk"
)

func main() {
	rt, err := core.NewRuntimeFor("local-sv", "", []string{"QRMI_SEED=21"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one runtime, one backend (%s), three SDKs\n\n", rt.Target())

	// --- SDK 1: pulse-level analog (Pulser-like) ---
	spec := rt.Spec()
	b, err := pulsesdk.NewBuilder(qir.LinearRegister("one", 1, 10), &spec)
	if err != nil {
		log.Fatal(err)
	}
	b.DeclareChannel(qir.GlobalRydberg).PiPulse(2 * math.Pi)
	res, err := b.Run(rt, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pulsesdk  (analog π pulse):   P(1) = %.3f  [sdk=%s]\n",
		res.Counts.Probability("1"), res.Metadata["shots"])

	// --- SDK 2: gate model (Qiskit-like) ---
	res, err = gatesdk.GHZ(3).Run(rt, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gatesdk   (3-qubit GHZ):      P(000)+P(111) = %.3f\n",
		res.Counts.Probability("000")+res.Counts.Probability("111"))

	// --- SDK 3: kernel/offload (CUDA-Q-like) ---
	k, err := kernelsdk.NewKernel("bell", 2)
	if err != nil {
		log.Fatal(err)
	}
	q := k.Qubits()
	k.H(q[0]).CX(q[0], q[1])
	counts, err := kernelsdk.Sample(rt, k, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernelsdk (Bell kernel):      P(00) = %.3f, P(11) = %.3f\n",
		counts.Probability("00"), counts.Probability("11"))

	z, err := kernelsdk.Observe(rt, k, 0, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernelsdk (observe):          <Z_0> on Bell = %+.3f (maximally mixed → 0)\n", z)

	fmt.Println("\nevery SDK lowered to the same IR and ran through the same QRMI path.")
}
