// workflow_campaign runs a multi-step hybrid campaign on the DAG workflow
// engine (paper §4: "workflow engine integrations"): a classical step plans a
// detuning sweep, one quantum step per sweep point prepares the Z2-ordered
// phase at that detuning, and a classical analysis step folds the results
// into an order-parameter curve — the phase-boundary scan a neutral-atom
// user actually runs. The whole DAG retargets with -qpu, so the identical
// campaign executes on the laptop emulator, the HPC tensor-network emulator,
// or the QPU model.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"hpcqc/internal/core"
	"hpcqc/internal/emulator"
	"hpcqc/internal/qir"
	"hpcqc/internal/workflow"
)

func main() {
	qpu := flag.String("qpu", "local-sv", "execution resource for every quantum step")
	points := flag.Int("points", 5, "sweep points")
	flag.Parse()

	rt, err := core.NewRuntimeFor(*qpu, "", []string{"QRMI_SEED=21", "QRMI_QPU_POLL_ADVANCE_S=120"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign on %s (%d sweep points)\n\n", rt.Target(), *points)

	const (
		n     = 7
		shots = 400
	)
	omega := 2 * math.Pi

	wf := workflow.New()

	// Step 1 (classical): plan the sweep. Downstream steps read the plan
	// from the workflow context, so the campaign has one source of truth.
	if err := wf.ClassicalStep("plan", nil, func(ctx *workflow.Context) error {
		var final []float64
		for i := 0; i < *points; i++ {
			// Final detunings from below to above the ordering transition.
			final = append(final, omega*(0.5+2.5*float64(i)/float64(*points-1)))
		}
		ctx.SetValue("sweep", final)
		fmt.Printf("plan: final detunings (rad/µs):")
		for _, d := range final {
			fmt.Printf(" %.1f", d)
		}
		fmt.Println()
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	// Step 2..k (quantum): one adiabatic preparation per sweep point. Each
	// step builds its program from the plan at execution time, after the
	// runtime has fetched current device characteristics.
	stepName := func(i int) string { return fmt.Sprintf("prepare-%d", i) }
	for i := 0; i < *points; i++ {
		i := i
		err := wf.QuantumStep(stepName(i), []string{"plan"}, func(ctx *workflow.Context) (*qir.Program, error) {
			sweepVal, _ := ctx.Value("sweep")
			final := sweepVal.([]float64)[i]
			seq := qir.NewAnalogSequence(qir.LinearRegister("chain", n, 5.5))
			// Ramp up, sweep detuning through the transition, ramp down.
			seq.Add(qir.GlobalRydberg, qir.Pulse{
				Amplitude: qir.RampWaveform{Dur: 300, Start: 0, Stop: omega},
				Detuning:  qir.ConstantWaveform{Dur: 300, Val: -3 * omega},
			})
			seq.Add(qir.GlobalRydberg, qir.Pulse{
				Amplitude: qir.ConstantWaveform{Dur: 2600, Val: omega},
				Detuning:  qir.RampWaveform{Dur: 2600, Start: -3 * omega, Stop: final},
			})
			seq.Add(qir.GlobalRydberg, qir.Pulse{
				Amplitude: qir.RampWaveform{Dur: 300, Start: omega, Stop: 0},
				Detuning:  qir.ConstantWaveform{Dur: 300, Val: final},
			})
			return qir.NewAnalogProgram(seq, shots), nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Final step (classical): aggregate every preparation into the
	// order-parameter curve.
	after := make([]string, *points)
	for i := range after {
		after[i] = stepName(i)
	}
	if err := wf.ClassicalStep("analyze", after, func(ctx *workflow.Context) error {
		type pt struct{ det, order, density float64 }
		var curve []pt
		sweepVal, _ := ctx.Value("sweep")
		final := sweepVal.([]float64)
		for i := 0; i < *points; i++ {
			res, ok := ctx.Result(stepName(i))
			if !ok {
				return fmt.Errorf("missing result for %s", stepName(i))
			}
			order, err := emulator.StaggeredMagnetization(res.Counts)
			if err != nil {
				return err
			}
			density, err := emulator.RydbergDensity(res.Counts)
			if err != nil {
				return err
			}
			curve = append(curve, pt{final[i], order, density})
		}
		sort.Slice(curve, func(a, b int) bool { return curve[a].det < curve[b].det })
		fmt.Println("\nfinal detuning   staggered order   rydberg density")
		for _, p := range curve {
			bar := ""
			for k := 0; k < int(p.order*40); k++ {
				bar += "#"
			}
			fmt.Printf("   %6.2f            %.3f          %.3f   %s\n", p.det, p.order, p.density, bar)
		}
		ctx.SetValue("curve", curve)
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	_, report, err := wf.Execute(rt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncampaign finished: %d steps in topological order: %v\n",
		len(report.Order), report.Order)
	fmt.Println("re-run with -qpu hpc-mps or -qpu qpu-onprem: the DAG is unchanged")
}
