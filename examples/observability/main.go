// observability walks the paper's §3.6 monitoring story from the hosting
// site's point of view: the QPU streams calibration telemetry into the
// time-series store, a Prometheus-format endpoint exposes it, a drift
// detector and alert rule watch it, a fault is injected, the alert fires,
// and the admin recalibrates through the daemon's gated control plane.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"hpcqc/internal/daemon"
	"hpcqc/internal/device"
	"hpcqc/internal/simclock"
	"hpcqc/internal/telemetry"
)

func main() {
	clk := simclock.New()
	reg := telemetry.NewRegistry()
	tsdb := telemetry.NewTSDB(24*time.Hour, 0)
	dev, err := device.New(device.Config{
		Clock: clk, Seed: 4, Registry: reg, TSDB: tsdb,
		DriftInterval: 30 * time.Second, DriftSigma: 0.0005,
	})
	if err != nil {
		log.Fatal(err)
	}
	dmn, err := daemon.NewDaemon(daemon.Config{
		Device: dev, Clock: clk, AdminToken: "admin",
		AllowedLowLevelOps: []string{"recalibrate", "qa_check"},
		Registry:           reg, TSDB: tsdb,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The ops team's alert rule: sustained Rabi-factor drift.
	detector := telemetry.NewDriftDetector()
	alerts := telemetry.NewAlertManager(tsdb)
	err = alerts.AddRule(&telemetry.AlertRule{
		Name:     "qpu_rabi_drift",
		Series:   "qpu_calib_rabi_factor",
		Labels:   telemetry.Labels{"device": dev.Spec().Name},
		Severity: telemetry.SeverityCritical,
		Predicate: func(v float64) bool {
			return detector.Observe(v) != telemetry.DriftOK
		},
		For: time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Healthy operation: 30 simulated minutes of telemetry.
	fmt.Println("— 30 min of healthy operation —")
	for i := 0; i < 60; i++ {
		clk.Advance(30 * time.Second)
		alerts.Evaluate(clk.Now())
	}
	fmt.Printf("drift state: %s (deviation %.4f), firing alerts: %v\n",
		detector.State(), detector.Deviation(), alerts.Firing())

	// A laser degrades: 12% calibration error appears.
	fmt.Println("\n— fault injected: Rabi factor drops 12% —")
	dev.InjectCalibrationError(-0.12, 0)
	var fired []telemetry.Alert
	for i := 0; i < 60 && len(fired) == 0; i++ {
		clk.Advance(30 * time.Second)
		fired = alerts.Evaluate(clk.Now())
	}
	if len(fired) == 0 {
		log.Fatal("alert never fired")
	}
	fmt.Printf("ALERT %s severity=%s value=%.3f at t=%s\n",
		fired[0].Rule, fired[0].Severity, fired[0].Value, fired[0].At)

	// The QA check confirms degradation; per-job metadata would carry it.
	if _, err := dmn.LowLevelOp("qa_check"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device status after QA: %s\n", dev.Status())

	// The admin recalibrates through the gated control plane.
	fmt.Println("\n— admin action: recalibrate —")
	if _, err := dmn.LowLevelOp("recalibrate"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device status: %s, calibration: %+v\n", dev.Status(), dev.CalibrationSnapshot())

	// What the site's Prometheus would scrape right now.
	fmt.Println("\n— /metrics (excerpt) —")
	for _, line := range strings.Split(reg.Expose(), "\n") {
		if strings.HasPrefix(line, "qpu_") && !strings.HasPrefix(line, "qpu_queue") {
			fmt.Println(" ", line)
		}
	}

	// Historical view from the TSDB: hourly downsampled calibration.
	pts := tsdb.Downsample("qpu_calib_rabi_factor",
		telemetry.Labels{"device": dev.Spec().Name},
		0, clk.Now(), 10*time.Minute, telemetry.AggMean)
	fmt.Println("\n— calibration history (10-min means) —")
	for _, p := range pts {
		bar := strings.Repeat("#", int(p.Value*40))
		fmt.Printf("  t=%-6s %.4f %s\n", p.At.Round(time.Minute), p.Value, bar)
	}
}
