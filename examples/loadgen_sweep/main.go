// loadgen_sweep walks the trace-driven what-if story end to end: synthesize
// a diurnal day of production-shaped traffic, replay it against the full
// router × scheduler policy matrix on virtual clocks, and print which policy
// pair meets the wait-time SLOs. The same flow is available from the command
// line as `qcload gen` + `qcload sweep`.
package main

import (
	"fmt"
	"log"
	"time"

	"hpcqc/internal/loadgen"
)

func main() {
	// A compressed "day": 6 hours of diurnal arrivals at a rate that pushes
	// the 4-partition fleet to ~75% utilization around the midday peak, so
	// the policy pairs actually separate. Crank Horizon to 24h for the full
	// experiment.
	proc, err := loadgen.NewProcess("diurnal", 260)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := loadgen.Generate(loadgen.Config{
		Seed:    7,
		Horizon: 6 * time.Hour,
		Process: proc,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d jobs over %s (%s arrivals)\n\n",
		trace.Header.Jobs, trace.Header.Horizon(), trace.Header.Process)

	report, err := loadgen.Sweep(trace, loadgen.SweepConfig{Devices: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %-15s %9s %9s %9s %8s %8s\n",
		"router", "scheduler", "prod p95", "dev p95", "dev p99", "preempt", "xrequeue")
	best := report.Results[0]
	for _, r := range report.Results {
		prod, dev := r.PerClass["production"], r.PerClass["dev"]
		fmt.Printf("%-14s %-15s %8.1fs %8.1fs %8.1fs %8d %8d\n",
			r.Router, r.Scheduler,
			prod.WaitSeconds.P95, dev.WaitSeconds.P95, dev.WaitSeconds.P99,
			r.Preemptions, r.CrossRequeues)
		if r.PerClass["dev"].WaitSeconds.P95 < best.PerClass["dev"].WaitSeconds.P95 {
			best = r
		}
	}
	fmt.Printf("\nbest dev p95 wait: %s routing + %s scheduling (%.1fs; production p95 %.1fs)\n",
		best.Router, best.Scheduler,
		best.PerClass["dev"].WaitSeconds.P95, best.PerClass["production"].WaitSeconds.P95)
}
