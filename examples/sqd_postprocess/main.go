// sqd_postprocess runs the CC-heavy reference workload (Table 1 pattern B):
// sample-based quantum diagonalization. Short quantum sampling batches feed
// a classical subspace diagonalization whose cost dwarfs the quantum time —
// the workload shape that motivates the paper's interleaving scheduler hints
// (compare Robledo-Moreno et al., post-processing parallelized to 6400
// Fugaku nodes).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"hpcqc/internal/workload"
)

func main() {
	qubits := flag.Int("qubits", 12, "register width")
	shots := flag.Int("shots", 400, "shots per quantum batch")
	iters := flag.Int("iters", 3, "sample → diagonalize iterations")
	cap := flag.Int("cap", 256, "subspace cap")
	flag.Parse()

	fmt.Printf("SQD pipeline: %d qubits, %d shots × %d iterations, subspace cap %d\n\n",
		*qubits, *shots, *iters, *cap)

	cfg := workload.SQDConfig{
		Qubits: *qubits, Shots: *shots, SubspaceCap: *cap, Iterations: *iters, Seed: 3,
	}

	start := time.Now()
	uniform, err := workload.SQDPipeline(cfg, workload.UniformSampler(*qubits, 3))
	if err != nil {
		log.Fatal(err)
	}
	uniformWall := time.Since(start)

	start = time.Now()
	biased, err := workload.SQDPipeline(cfg, workload.GroundBiasedSampler(*qubits, 1.2, 3))
	if err != nil {
		log.Fatal(err)
	}
	biasedWall := time.Since(start)

	fmt.Println("sampler         energy     classical_ops   subspace_sizes  wall")
	fmt.Printf("uniform        %8.4f   %12d   %v  %s\n",
		uniform.Energy, uniform.ClassicalOps, uniform.SubspaceSizes, uniformWall.Round(time.Millisecond))
	fmt.Printf("ground-biased  %8.4f   %12d   %v  %s\n",
		biased.Energy, biased.ClassicalOps, biased.SubspaceSizes, biasedWall.Round(time.Millisecond))

	fmt.Printf("\nbiased sampling reaches %.2f lower energy at the same quantum budget.\n",
		uniform.Energy-biased.Energy)
	fmt.Println("quantum time: seconds; classical diagonalization: the dominant cost —")
	fmt.Println("exactly the pattern-B shape Table 1 routes to interleaving schedulers.")
}
