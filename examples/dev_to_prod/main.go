// dev_to_prod walks the paper's Figure 1 workflow end to end: the same
// adiabatic state-preparation program moves from local development
// (exact emulator) to HPC-scale testing (tensor-network emulator) to
// production (the QPU device model), changing only the resource name —
// never the program.
package main

import (
	"fmt"
	"log"
	"math"

	"hpcqc/internal/core"
	"hpcqc/internal/qir"
)

// buildProgram is written ONCE. Note it contains no backend references: the
// paper's central usability point.
func buildProgram() *qir.Program {
	omega := 2 * math.Pi
	seq := qir.NewAnalogSequence(qir.LinearRegister("chain", 7, 5.5))
	// Rise under negative detuning…
	seq.Add(qir.GlobalRydberg, qir.Pulse{
		Amplitude: qir.RampWaveform{Dur: 600, Start: 0, Stop: omega},
		Detuning:  qir.ConstantWaveform{Dur: 600, Val: -1.5 * omega},
	})
	// …sweep the detuning through the phase transition…
	seq.Add(qir.GlobalRydberg, qir.Pulse{
		Amplitude: qir.ConstantWaveform{Dur: 2500, Val: omega},
		Detuning:  qir.RampWaveform{Dur: 2500, Start: -1.5 * omega, Stop: 1.5 * omega},
	})
	// …and switch off in the ordered phase.
	seq.Add(qir.GlobalRydberg, qir.Pulse{
		Amplitude: qir.RampWaveform{Dur: 600, Start: omega, Stop: 0},
		Detuning:  qir.ConstantWaveform{Dur: 600, Val: 1.5 * omega},
	})
	return qir.NewAnalogProgram(seq, 500)
}

func main() {
	stages := []struct {
		label    string
		resource string
	}{
		{"1. develop on the laptop", "local-sv"},
		{"2. test at HPC scale", "hpc-mps"},
		{"3. run in production", "qpu-onprem"},
	}
	environ := []string{"QRMI_SEED=11", "QRMI_QPU_POLL_ADVANCE_S=60"}
	for _, stage := range stages {
		fmt.Printf("\n%s  (--qpu=%s)\n", stage.label, stage.resource)

		// Each stage re-resolves the runtime and re-fetches the current
		// device characteristics — Figure 1's per-stage metadata fetch.
		rt, err := core.NewRuntimeFor(stage.resource, "", environ)
		if err != nil {
			log.Fatal(err)
		}
		spec := rt.Spec()
		fmt.Printf("   device: %s, max qubits %d", spec.Name, spec.MaxQubits)
		if calib, ok := rt.Metadata()["calibration"]; ok {
			fmt.Printf(", calibration %s", calib)
		}
		fmt.Println()

		// The program is identical in every stage.
		res, err := rt.Execute(buildProgram())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   P(Z2 ordered state 1010101) = %.3f\n", res.Counts.Probability("1010101"))
		fmt.Printf("   executed on backend %s via method %s\n",
			res.Metadata["backend"], res.Metadata["method"])
	}
	fmt.Println("\nsame program, three environments, zero source changes.")
}
