// trace_perfetto walks the sim-time tracing pipeline end to end: replay a
// generated workload with the span subsystem attached, print where each
// class's seconds went (the per-stage latency attribution the SLO analyzer
// folds into sweep reports), render one job's lifecycle waterfall from the
// flight recorder, and export the whole replay as Chrome trace-event JSON.
//
// Open the exported file in Perfetto: https://ui.perfetto.dev → "Open trace
// file" → fleet_trace.json (chrome://tracing and speedscope read it too).
// The "fleet partitions" process has one track per QPU partition showing
// busy slices named by the occupying job with explicit idle gaps; the
// "jobs" process has one track per job walking validate → admission →
// route → queued → dispatch → execute → completed.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"hpcqc/internal/loadgen"
	"hpcqc/internal/trace"
)

func main() {
	// One hour of Poisson arrivals — enough to show queueing under load.
	tr, err := loadgen.Generate(loadgen.Config{
		Seed: 7, Horizon: time.Hour,
		Process: &loadgen.Poisson{RatePerHour: 180},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Replay on a 2-partition fleet with the flight recorder sized to hold
	// every trace (a live daemon would bound it; an export wants it all).
	rec := trace.NewFlightRecorder(len(tr.Records))
	rep, err := loadgen.Replay(tr, loadgen.ReplayConfig{
		Devices: 2, Router: "least-loaded", Scheduler: "fifo", Admission: "slo-guard",
		Seed: 7, SpanListener: rec.Observe,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d jobs: %d completed, %d rejected, %d preemptions\n\n",
		rep.Jobs, rep.Completed, rep.Rejected, rep.Preemptions)

	// Stage-latency attribution: the same numbers a traced `qcload sweep`
	// reports per cell.
	fmt.Println("— where each class's seconds went (p50/p99 per stage) —")
	classes := make([]string, 0, len(rep.PerClass))
	for class := range rep.PerClass {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		c := rep.PerClass[class]
		if len(c.Stages) == 0 {
			continue
		}
		fmt.Printf("  %s:\n", class)
		stages := make([]string, 0, len(c.Stages))
		for stage := range c.Stages {
			stages = append(stages, stage)
		}
		sort.Strings(stages)
		for _, stage := range stages {
			st := c.Stages[stage]
			fmt.Printf("    %-9s %5d spans  p50 %8.3fs  p99 %8.3fs  total %9.1fs\n",
				stage, st.Spans, st.Seconds.P50, st.Seconds.P99, st.TotalSeconds)
		}
	}

	// One job's waterfall from the flight recorder — what `qctl trace
	// <job>` renders against a live daemon.
	jobs := rec.Jobs()
	var pick trace.JobTrace
	for _, t := range jobs {
		if t.State == trace.MarkCompleted && len(t.Spans) > len(pick.Spans) {
			pick = t
		}
	}
	fmt.Printf("\n— trace %s: class %s, device %s, %s —\n", pick.Job, pick.Class, pick.Device, pick.State)
	for _, s := range pick.Spans {
		fmt.Printf("  %-10s +%-12s %-12s %s\n", s.Stage, s.Start, s.Dur(), s.Detail)
	}

	// Chrome trace-event export for Perfetto.
	f, err := os.Create("fleet_trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteChrome(f, jobs, rec.Occupancy()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote fleet_trace.json (%d job tracks) — open it at https://ui.perfetto.dev\n", len(jobs))
}
