// Quickstart: build an analog program with the pulse SDK, run it on the
// default local emulator, and print the counts. This is the five-minute
// on-ramp to the runtime environment.
package main

import (
	"fmt"
	"log"
	"math"

	"hpcqc/internal/core"
	"hpcqc/internal/qir"
	"hpcqc/internal/sdk/pulsesdk"
)

func main() {
	// 1. Bind a runtime. No --qpu flag and no environment: the catalogue
	//    default is the local exact emulator — development mode.
	rt, err := core.NewRuntimeFor("", "", []string{"QRMI_SEED=7"})
	if err != nil {
		log.Fatal(err)
	}
	spec := rt.Spec()
	fmt.Printf("bound to %s (max %d qubits)\n", rt.Target(), spec.MaxQubits)

	// 2. Build a two-atom blockade experiment with the pulse SDK: a
	//    collective π pulse on atoms close enough that double excitation
	//    is forbidden.
	omega := 2 * math.Pi // rad/µs
	reg := qir.LinearRegister("pair", 2, 5)
	b, err := pulsesdk.NewBuilder(reg, &spec)
	if err != nil {
		log.Fatal(err)
	}
	tCollectivePi := math.Pi / (math.Sqrt2 * omega) * 1000 // ns
	b.DeclareChannel(qir.GlobalRydberg).
		ConstantPulse(qir.GlobalRydberg, tCollectivePi, omega, 0, 0)

	// 3. Run 1000 shots and inspect.
	res, err := b.Run(rt, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("counts:")
	for _, bits := range []string{"00", "01", "10", "11"} {
		fmt.Printf("  %s  %4d\n", bits, res.Counts[bits])
	}
	fmt.Printf("P(single excitation) = %.3f (blockade shares one excitation)\n",
		res.Counts.Probability("01")+res.Counts.Probability("10"))
	fmt.Printf("P(double excitation) = %.3f (blockaded, ~0)\n",
		res.Counts.Probability("11"))
}
