// vqe_hybrid runs a balanced hybrid quantum-classical workload (Table 1
// pattern C): a variational loop that tunes an analog pulse to maximize
// antiferromagnetic order on an atom chain, alternating quantum execution
// with classical SPSA optimization. The same loop runs on any backend;
// switch with -qpu.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"hpcqc/internal/core"
	"hpcqc/internal/qir"
)

func main() {
	qpu := flag.String("qpu", "local-sv", "execution resource")
	iters := flag.Int("iters", 15, "optimizer iterations")
	flag.Parse()

	rt, err := core.NewRuntimeFor(*qpu, "", []string{"QRMI_SEED=5", "QRMI_QPU_POLL_ADVANCE_S=120"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid VQE-style loop on %s\n", rt.Target())

	const n = 5
	omega := 2 * math.Pi

	// The ansatz: an adiabatic-like sweep whose final detuning and sweep
	// duration are the variational parameters.
	build := func(params []float64) (*qir.Program, error) {
		detFinal := math.Abs(params[0]) * omega
		sweepNs := 500 + math.Abs(params[1])*2000
		if detFinal > 15*omega {
			detFinal = 15 * omega
		}
		if sweepNs > 4000 {
			sweepNs = 4000
		}
		seq := qir.NewAnalogSequence(qir.LinearRegister("chain", n, 5.5))
		seq.Add(qir.GlobalRydberg, qir.Pulse{
			Amplitude: qir.RampWaveform{Dur: 400, Start: 0, Stop: omega},
			Detuning:  qir.ConstantWaveform{Dur: 400, Val: -detFinal},
		})
		seq.Add(qir.GlobalRydberg, qir.Pulse{
			Amplitude: qir.ConstantWaveform{Dur: sweepNs, Val: omega},
			Detuning:  qir.RampWaveform{Dur: sweepNs, Start: -detFinal, Stop: detFinal},
		})
		seq.Add(qir.GlobalRydberg, qir.Pulse{
			Amplitude: qir.RampWaveform{Dur: 400, Start: omega, Stop: 0},
			Detuning:  qir.ConstantWaveform{Dur: 400, Val: detFinal},
		})
		return qir.NewAnalogProgram(seq, 300), nil
	}

	// Cost: negative staggered magnetization — the classical post-
	// processing step of each iteration.
	cost := func(counts qir.Counts) float64 {
		total := counts.TotalShots()
		if total == 0 {
			return 0
		}
		acc := 0.0
		for bits, c := range counts {
			m := 0.0
			for i := 0; i < len(bits); i++ {
				z := 1.0
				if bits[i] == '1' {
					z = -1
				}
				if i%2 == 1 {
					z = -z
				}
				m += z
			}
			acc += math.Abs(m) / float64(len(bits)) * float64(c)
		}
		return -acc / float64(total)
	}

	res, err := rt.RunHybrid([]float64{0.5, 0.3}, build, cost, core.HybridOptions{
		Iterations: *iters,
		Seed:       9,
		OnIteration: func(iter int, c float64) {
			fmt.Printf("  iter %2d: staggered magnetization = %.3f\n", iter, -c)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest staggered magnetization: %.3f\n", -res.BestCost)
	fmt.Printf("best params: detuning=%.2fΩ sweep=%.0fns\n",
		math.Abs(res.BestParams[0]), 500+math.Abs(res.BestParams[1])*2000)
	fmt.Printf("quantum executions: %d\n", res.Evaluations)
}
