# Tier-1 entry points. `make test` is the fast gate (short mode, seconds);
# `make test-full` runs everything including the ~40s experiment
# reproductions; `make test-race` puts the race detector on the concurrent
# fleet/scheduler/device/emulator paths.

GO ?= go

.PHONY: build test test-full test-race bench bench-json bench-diff fuzz-smoke vet vet-trace check

# Where bench-diff writes its fresh recording; override for parallel runs.
BENCH_FRESH ?= $(if $(TMPDIR),$(TMPDIR),/tmp)/hpcqc_bench_fresh.json

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

test-full:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/daemon/... ./internal/admission/... ./internal/sched/... ./internal/device/... ./internal/emulator/...
	$(GO) test -race -short ./internal/loadgen/...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# The benchmark selection behind bench-json and bench-diff: the replay and
# dispatch hot paths in the root package plus the program-cache/router
# primitives in internal/daemon, plus the wide-matrix sweep and saturation
# search that gate the capacity-planning engine.
BENCH_PATTERN = BenchmarkFleetDispatch|BenchmarkDaemonDispatch|BenchmarkLoadgen|BenchmarkProgramCache|BenchmarkWeightedRouterPick|BenchmarkSweepWideMatrix|BenchmarkSaturateSearch
BENCH_PKGS = . ./internal/daemon

# bench-json records the fleet-scaling and load-generation benchmark
# trajectory as machine-readable test2json events in BENCH_fleet.json, so
# regressions in the dispatch and replay hot paths are diffable across
# commits.
bench-json:
	$(GO) test -bench='$(BENCH_PATTERN)' \
		-benchmem -run='^$$' -json $(BENCH_PKGS) > BENCH_fleet.json

# bench-diff re-runs the bench-json suite into a scratch file and fails if
# any jobs/wall-second or cells/wall-second throughput metric regressed >20%
# against the committed BENCH_fleet.json — the CI gate that keeps the replay
# and sweep hot paths from sliding back — or if the sweep's peak_heap_mb rose
# >20% (benchdiff's lower-is-better rule: the bounded-memory contract). The
# untraced, affinity and priority replay benchmarks plus the wide-matrix
# sweep and saturation search are -required: renaming or dropping any of
# them must fail the gate, not skip it. The priority benchmark's interleaved
# slo-urgency/constant cost ratio is additionally capped at 10% by
# benchdiff's -priority-overhead rule.
bench-diff:
	$(GO) test -bench='$(BENCH_PATTERN)' \
		-benchmem -run='^$$' -json $(BENCH_PKGS) > $(BENCH_FRESH)
	$(GO) run ./cmd/benchdiff \
		-require BenchmarkLoadgenReplay,BenchmarkLoadgenReplayAffinity,BenchmarkLoadgenReplayPriority,BenchmarkSweepWideMatrix,BenchmarkSaturateSearch \
		BENCH_fleet.json $(BENCH_FRESH)

# fuzz-smoke runs each trace-ingestion fuzz target for a fixed iteration
# count — a deterministic-duration CI pass over the JSONL reader and the
# SWF/sacct importers (Go fuzzing accepts exactly one -fuzz target per
# invocation, hence three commands). Crashers land in
# internal/loadgen/testdata/fuzz/ for `go test` to replay forever after.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzReadTrace$$' -fuzztime=2000x ./internal/loadgen
	$(GO) test -run='^$$' -fuzz='^FuzzImportSWF$$' -fuzztime=2000x ./internal/loadgen
	$(GO) test -run='^$$' -fuzz='^FuzzImportSacct$$' -fuzztime=2000x ./internal/loadgen

vet:
	$(GO) vet ./...

# vet-trace is the trace-subsystem gate: vet plus the race detector over the
# span pipeline. Span emission happens under daemon locks from dispatch-side
# goroutines, so the trace package earns its own race pass beyond the
# test-race bundle.
vet-trace:
	$(GO) vet ./internal/trace/...
	$(GO) test -race ./internal/trace/...

check: vet vet-trace build test test-race
