package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hpcqc/internal/qir"
)

func TestDemoPrograms(t *testing.T) {
	for _, name := range []string{"bell", "pipulse", "adiabatic"} {
		p, err := demoProgram(name, 50)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Shots != 50 {
			t.Fatalf("%s: shots = %d", name, p.Shots)
		}
		if err := p.Validate(nil); err != nil {
			t.Fatalf("%s: invalid: %v", name, err)
		}
	}
	if _, err := demoProgram("nonsense", 10); err == nil {
		t.Fatal("unknown demo accepted")
	}
}

func TestRunDemoOnLocalEmulator(t *testing.T) {
	if err := run("local-sv", "", "bell", 20, 1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunProgramFile(t *testing.T) {
	p, _ := demoProgram("pipulse", 10)
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prog.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("local-sv", "", "", 0, 2, []string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("ghost-resource", "", "bell", 10, 1, nil); err == nil {
		t.Fatal("unknown resource accepted")
	}
	if err := run("local-sv", "", "", 10, 1, nil); err == nil {
		t.Fatal("missing program accepted")
	}
	if err := run("local-sv", "", "", 10, 1, []string{"/does/not/exist.json"}); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if err := run("local-sv", "", "", 10, 1, []string{bad}); err == nil {
		t.Fatal("bad file accepted")
	}
}

func TestPrintResultHandlesManyOutcomes(t *testing.T) {
	counts := make(qir.Counts)
	for i := 0; i < 30; i++ {
		counts[bitstringOf(i)] = i + 1
	}
	printResult(&qir.Result{Counts: counts, Metadata: map[string]string{"backend": "x"}})
}

func bitstringOf(i int) string {
	b := make([]byte, 5)
	for q := 0; q < 5; q++ {
		if (i>>uint(q))&1 == 1 {
			b[q] = '1'
		} else {
			b[q] = '0'
		}
	}
	return string(b)
}
