// Command qrun executes a quantum program on any configured resource —
// the user-facing realization of the paper's `--qpu=<resource>` switch.
// The same program file runs on a laptop emulator, an HPC tensor-network
// emulator, or the (simulated) QPU without modification.
//
// Usage:
//
//	qrun -qpu <resource> [-profiles qrmi.json] [-shots N] [-seed N] program.json
//	qrun -qpu <resource> -demo bell|pipulse|adiabatic [-shots N]
//
// The program file holds a serialized qir.Program. Demo programs are built
// in so the tool is usable without authoring JSON by hand.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"hpcqc/internal/core"
	"hpcqc/internal/qir"
)

func main() {
	qpu := flag.String("qpu", "", "resource to execute on (default: profile catalogue default)")
	profiles := flag.String("profiles", "", "path to a QRMI profile catalogue (JSON)")
	shots := flag.Int("shots", 200, "shots for -demo programs")
	seed := flag.Int64("seed", 1, "deterministic seed")
	demo := flag.String("demo", "", "built-in demo program: bell, pipulse, adiabatic")
	flag.Parse()

	if err := run(*qpu, *profiles, *demo, *shots, *seed, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "qrun:", err)
		os.Exit(1)
	}
}

func run(qpu, profilesPath, demo string, shots int, seed int64, args []string) error {
	environ := append(os.Environ(), fmt.Sprintf("QRMI_SEED=%d", seed))
	rt, err := core.NewRuntimeFor(qpu, profilesPath, environ)
	if err != nil {
		return err
	}
	spec := rt.Spec()
	fmt.Printf("target: %s (max %d qubits", rt.Target(), spec.MaxQubits)
	if spec.ShotRateHz > 0 {
		fmt.Printf(", %g Hz shot rate", spec.ShotRateHz)
	}
	fmt.Println(")")

	var program *qir.Program
	switch {
	case demo != "":
		program, err = demoProgram(demo, shots)
		if err != nil {
			return err
		}
	case len(args) == 1:
		raw, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		program = new(qir.Program)
		if err := json.Unmarshal(raw, program); err != nil {
			return fmt.Errorf("parsing %s: %w", args[0], err)
		}
	default:
		return fmt.Errorf("need a program file or -demo (got %d args)", len(args))
	}

	res, err := rt.Execute(program)
	if err != nil {
		return err
	}
	printResult(res)
	return nil
}

func demoProgram(name string, shots int) (*qir.Program, error) {
	omega := 2 * math.Pi
	switch name {
	case "bell":
		return qir.NewDigitalProgram(qir.NewCircuit(2).H(0).CX(0, 1), shots), nil
	case "pipulse":
		tPi := math.Pi / omega * 1000
		seq := qir.NewAnalogSequence(qir.LinearRegister("one", 1, 10))
		seq.Add(qir.GlobalRydberg, qir.Pulse{
			Amplitude: qir.ConstantWaveform{Dur: tPi, Val: omega},
			Detuning:  qir.ConstantWaveform{Dur: tPi, Val: 0},
		})
		return qir.NewAnalogProgram(seq, shots), nil
	case "adiabatic":
		seq := qir.NewAnalogSequence(qir.LinearRegister("chain", 7, 5.5))
		seq.Add(qir.GlobalRydberg, qir.Pulse{
			Amplitude: qir.RampWaveform{Dur: 600, Start: 0, Stop: omega},
			Detuning:  qir.ConstantWaveform{Dur: 600, Val: -1.5 * omega},
		})
		seq.Add(qir.GlobalRydberg, qir.Pulse{
			Amplitude: qir.ConstantWaveform{Dur: 2500, Val: omega},
			Detuning:  qir.RampWaveform{Dur: 2500, Start: -1.5 * omega, Stop: 1.5 * omega},
		})
		seq.Add(qir.GlobalRydberg, qir.Pulse{
			Amplitude: qir.RampWaveform{Dur: 600, Start: omega, Stop: 0},
			Detuning:  qir.ConstantWaveform{Dur: 600, Val: 1.5 * omega},
		})
		return qir.NewAnalogProgram(seq, shots), nil
	default:
		return nil, fmt.Errorf("unknown demo %q (bell, pipulse, adiabatic)", name)
	}
}

func printResult(res *qir.Result) {
	type kv struct {
		bits string
		n    int
	}
	var rows []kv
	for bits, n := range res.Counts {
		rows = append(rows, kv{bits, n})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].n != rows[b].n {
			return rows[a].n > rows[b].n
		}
		return rows[a].bits < rows[b].bits
	})
	total := res.Counts.TotalShots()
	fmt.Printf("counts (%d shots):\n", total)
	for i, r := range rows {
		if i >= 12 {
			fmt.Printf("  ... %d more outcomes\n", len(rows)-i)
			break
		}
		fmt.Printf("  %s  %6d  (%.3f)\n", r.bits, r.n, float64(r.n)/float64(total))
	}
	keys := make([]string, 0, len(res.Metadata))
	for k := range res.Metadata {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("metadata:")
	for _, k := range keys {
		fmt.Printf("  %s = %s\n", k, res.Metadata[k])
	}
}
