package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	// The fast experiments run end to end through the CLI driver.
	for _, exp := range []string{"table1", "gres", "preempt", "malleable", "shotrate"} {
		if err := run(exp, 7); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("warp-drive", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
