// Command hpcsim regenerates the paper's evaluation artifacts: every table
// and figure reproduction plus the DESIGN.md ablations, printed as aligned
// text tables. Run with -exp all (default) or a specific experiment ID.
//
// Usage:
//
//	hpcsim [-exp table1|figure1|figure2|bond|shotrate|gres|drift|preempt|sqd|malleable|hints|fairshare|all] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"hpcqc/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, figure1, figure2, bond, shotrate, gres, drift, preempt, sqd, malleable, hints, fairshare, all)")
	seed := flag.Int64("seed", 42, "deterministic seed")
	flag.Parse()

	if err := run(*exp, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "hpcsim:", err)
		os.Exit(1)
	}
}

func run(exp string, seed int64) error {
	type driver struct {
		id  string
		fn  func(int64) (fmt.Stringer, error)
		why string
	}
	drivers := []driver{
		{"table1", func(s int64) (fmt.Stringer, error) {
			_, t := experiments.RunTable1(s)
			return t, nil
		}, "Table 1: workload taxonomy × scheduling policy"},
		{"figure1", func(s int64) (fmt.Stringer, error) {
			_, t, err := experiments.RunFigure1(s)
			return t, err
		}, "Figure 1: dev→HPC→QPU portability"},
		{"figure2", func(s int64) (fmt.Stringer, error) {
			_, t, err := experiments.RunFigure2(s)
			return t, err
		}, "Figure 2: architecture end-to-end"},
		{"bond", func(s int64) (fmt.Stringer, error) {
			_, t, err := experiments.RunBondSweep(s)
			return t, err
		}, "A1: MPS bond-dimension ablation"},
		{"shotrate", func(s int64) (fmt.Stringer, error) {
			_, t := experiments.RunShotRateSweep(s)
			return t, nil
		}, "A2: shot-rate sweep"},
		{"gres", func(s int64) (fmt.Stringer, error) {
			_, t, err := experiments.RunGRESTimeshare(s)
			return t, err
		}, "A3: GRES timeshares"},
		{"drift", func(s int64) (fmt.Stringer, error) {
			_, t, err := experiments.RunDriftDetection(s)
			return t, err
		}, "A4: drift detection"},
		{"preempt", func(s int64) (fmt.Stringer, error) {
			_, t := experiments.RunPreemption(s)
			return t, nil
		}, "A5: preemption"},
		{"sqd", func(s int64) (fmt.Stringer, error) {
			_, t, err := experiments.RunSQD(s)
			return t, err
		}, "A6: SQD post-processing"},
		{"malleable", func(s int64) (fmt.Stringer, error) {
			_, t, err := experiments.RunMalleable(s)
			return t, err
		}, "A7: malleable classical jobs"},
		{"hints", func(s int64) (fmt.Stringer, error) {
			_, t, err := experiments.RunDurationHints(s)
			return t, err
		}, "A8: expected-QPU-duration hints"},
		{"fairshare", func(s int64) (fmt.Stringer, error) {
			_, t, err := experiments.RunFairShare(s)
			return t, err
		}, "A9: fair share across users"},
	}

	ran := false
	for _, d := range drivers {
		if exp != "all" && exp != d.id {
			continue
		}
		ran = true
		table, err := d.fn(seed)
		if err != nil {
			return fmt.Errorf("%s: %w", d.id, err)
		}
		fmt.Println(table.String())
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
