package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hpcqc/internal/admission"
	"hpcqc/internal/daemon"
	"hpcqc/internal/device"
	"hpcqc/internal/loadgen"
	"hpcqc/internal/sched"
	"hpcqc/internal/simclock"
	"hpcqc/internal/telemetry"
)

func testDaemonServer(t *testing.T) *httptest.Server {
	t.Helper()
	clk := simclock.New()
	reg := telemetry.NewRegistry()
	dev, err := device.New(device.Config{Clock: clk, Seed: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.NewDaemon(daemon.Config{
		Device: dev, Clock: clk, AdminToken: "tok", Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)
	go func() {
		for i := 0; i < 100; i++ {
			clk.Advance(time.Second)
		}
	}()
	return ts
}

func TestQctlSubcommands(t *testing.T) {
	ts := testDaemonServer(t)
	for _, args := range [][]string{
		{"status"},
		{"devices"},
		{"jobs"},
		{"metrics"},
		{"op", "recalibrate"},
		{"op", "qa_check"},
	} {
		if err := run(ts.URL, "tok", args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

// TestQctlDevicesListing checks the fleet table contains every partition with
// status, utilization and queue depths — the per-partition view the CLI is
// expected to surface.
func TestQctlDevicesListing(t *testing.T) {
	clk := simclock.New()
	fleet, err := device.NewFleet(3, device.Config{Clock: clk, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.NewDaemon(daemon.Config{
		Devices: fleet.Devices(), Clock: clk, AdminToken: "tok",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)

	var out bytes.Buffer
	if err := devices(ts.URL, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range append(fleet.IDs(), "3 partition(s)", "least-loaded", "STATUS", "UTIL", "QUEUED", "online") {
		if !strings.Contains(got, want) {
			t.Fatalf("devices output missing %q:\n%s", want, got)
		}
	}
	// The throwaway session must not linger.
	if n := d.AdminStatus().Sessions; n != 0 {
		t.Fatalf("devices listing leaked %d session(s)", n)
	}
}

// TestQctlJobsShowsRejected: the jobs table surfaces admission-shed jobs
// with their state and the policy's reason.
func TestQctlJobsShowsRejected(t *testing.T) {
	clk := simclock.New()
	dev, err := device.New(device.Config{Clock: clk, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.NewDaemon(daemon.Config{
		Device: dev, Clock: clk, AdminToken: "tok",
		Admission: admission.NewTokenBucketWith(map[sched.Class]admission.Quota{
			sched.ClassDev: {RatePerHour: 0.000001, Burst: 1},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)

	s, err := d.OpenSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	prog := loadgen.BuildProgram(2, 2)
	payload, err := prog.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(s.Token, daemon.SubmitRequest{Program: payload, Class: sched.ClassDev}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(s.Token, daemon.SubmitRequest{Program: payload, Class: sched.ClassDev}); err == nil {
		t.Fatal("second dev job not shed")
	}

	var out bytes.Buffer
	if err := jobs(ts.URL, "tok", &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"jobs: 2", "STATE", "DETAIL", "rejected", "token-bucket", "running"} {
		if !strings.Contains(got, want) {
			t.Fatalf("jobs output missing %q:\n%s", want, got)
		}
	}
}

func TestQctlErrors(t *testing.T) {
	ts := testDaemonServer(t)
	if err := run(ts.URL, "wrong-token", []string{"status"}); err == nil {
		t.Fatal("bad token accepted")
	}
	if err := run(ts.URL, "tok", []string{"op"}); err == nil {
		t.Fatal("op without name accepted")
	}
	if err := run(ts.URL, "tok", []string{"op", "self-destruct"}); err == nil {
		t.Fatal("gated op accepted")
	}
	if err := run(ts.URL, "tok", []string{"bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run("http://127.0.0.1:1", "tok", []string{"status"}); err == nil {
		t.Fatal("unreachable endpoint accepted")
	}
}
