// Command qctl is the hosting-site administration CLI for the middleware
// daemon: device status, fleet listing, job listing, maintenance windows,
// recalibration and the gated low-level control operations (paper §2.5,
// §3.6).
//
// Usage:
//
//	qctl -endpoint http://node:8080 -token ADMIN_TOKEN status
//	qctl ... devices
//	qctl ... jobs
//	qctl ... op recalibrate|qa_check|maintenance_on|maintenance_off
//	qctl ... metrics
//	qctl ... trace <job-id>
//	qctl ... trace
//
// devices renders the fleet from /api/v1/devices — one line per partition
// with status, utilization and queue depth by class — through a throwaway
// user session, so it needs no admin token.
//
// jobs renders the admin job listing as a table — one line per job with
// class, state and device; jobs shed by the admission stage show as
// "rejected" with the policy's reason in the DETAIL column.
//
// trace <job-id> renders the job's lifecycle trace from the daemon's flight
// recorder as a stage waterfall — where the job's seconds went (admission,
// queueing, dispatch, execution) with the policy annotations per stage. A
// bare trace lists every trace the recorder still holds. Like devices, it
// uses a throwaway session.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"
	"time"
)

func main() {
	endpoint := flag.String("endpoint", "http://127.0.0.1:8080", "daemon endpoint")
	token := flag.String("token", "", "admin token")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "qctl: need a subcommand: status, devices, jobs, op <name>, metrics, trace [job-id]")
		os.Exit(2)
	}
	if err := run(*endpoint, *token, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "qctl:", err)
		os.Exit(1)
	}
}

func run(endpoint, token string, args []string) error {
	switch args[0] {
	case "status":
		return get(endpoint+"/admin/v1/status", token)
	case "devices":
		return devices(endpoint, os.Stdout)
	case "jobs":
		return jobs(endpoint, token, os.Stdout)
	case "metrics":
		return get(endpoint+"/metrics", "")
	case "op":
		if len(args) < 2 {
			return fmt.Errorf("op needs an operation name")
		}
		return post(endpoint+"/admin/v1/lowlevel/"+args[1], token)
	case "trace":
		if len(args) >= 2 {
			return traceJob(endpoint, args[1], os.Stdout)
		}
		return traceList(endpoint, os.Stdout)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// request performs one authenticated bodyless call and returns the response
// body, turning non-2xx statuses into errors — the shared core of every
// qctl fetch.
func request(method, url, token string) ([]byte, error) {
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		return nil, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
	}
	return body, nil
}

func do(method, url, token string) error {
	body, err := request(method, url, token)
	if err != nil {
		return err
	}
	fmt.Println(string(body))
	return nil
}

func get(url, token string) error  { return do(http.MethodGet, url, token) }
func post(url, token string) error { return do(http.MethodPost, url, token) }

// devices lists the fleet partitions with per-partition queue depth and
// utilization from /api/v1/devices, using a short-lived user session for the
// token-authenticated endpoint.
func devices(endpoint string, out io.Writer) error {
	token, err := openSession(endpoint, "qctl")
	if err != nil {
		return err
	}
	defer closeSession(endpoint, token)

	body, err := request(http.MethodGet, endpoint+"/api/v1/devices", token)
	if err != nil {
		return err
	}
	var listing struct {
		Router  string `json:"router"`
		Devices []struct {
			ID          string         `json:"id"`
			Status      string         `json:"status"`
			Utilization float64        `json:"utilization"`
			Queued      map[string]int `json:"queued"`
			Cache       *struct {
				Hits    uint64  `json:"hits"`
				Misses  uint64  `json:"misses"`
				Size    int     `json:"size"`
				HitRate float64 `json:"hit_rate"`
			} `json:"cache"`
		} `json:"devices"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		return fmt.Errorf("parsing device listing: %w", err)
	}
	fmt.Fprintf(out, "fleet: %d partition(s), %s routing\n", len(listing.Devices), listing.Router)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "DEVICE\tSTATUS\tUTIL\tQUEUED(prod/test/dev)\tCACHE")
	for _, d := range listing.Devices {
		// The cache column reads "hit-rate% (warm entries)"; "-" when the
		// daemon runs without a program cache.
		cache := "-"
		if d.Cache != nil {
			cache = fmt.Sprintf("%.0f%% (%d)", d.Cache.HitRate*100, d.Cache.Size)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.1f%%\t%d/%d/%d\t%s\n",
			d.ID, d.Status, d.Utilization*100,
			d.Queued["production"], d.Queued["test"], d.Queued["dev"], cache)
	}
	return tw.Flush()
}

// jobs renders the admin job listing as a table, newest first. Rejected jobs
// carry the admission policy's rationale; failed jobs carry their error.
func jobs(endpoint, token string, out io.Writer) error {
	body, err := request(http.MethodGet, endpoint+"/admin/v1/jobs", token)
	if err != nil {
		return err
	}
	var listing []struct {
		ID                string  `json:"id"`
		User              string  `json:"user"`
		Class             string  `json:"class"`
		State             string  `json:"state"`
		Device            string  `json:"device"`
		Error             string  `json:"error"`
		AdmissionReason   string  `json:"admission_reason"`
		RetryAfterSeconds float64 `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		return fmt.Errorf("parsing job listing: %w", err)
	}
	fmt.Fprintf(out, "jobs: %d\n", len(listing))
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "JOB\tUSER\tCLASS\tSTATE\tDEVICE\tDETAIL")
	for _, j := range listing {
		detail := j.Error
		if j.State == "rejected" {
			detail = j.AdmissionReason
			if j.RetryAfterSeconds > 0 {
				detail = fmt.Sprintf("%s (retry after %.0fs)", detail, j.RetryAfterSeconds)
			}
		}
		dev := j.Device
		if dev == "" {
			dev = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", j.ID, j.User, j.Class, j.State, dev, detail)
	}
	return tw.Flush()
}

// traceSpan mirrors the trace.Span JSON (start/end are nanosecond offsets).
type traceSpan struct {
	Stage  string        `json:"stage"`
	Class  string        `json:"class"`
	Device string        `json:"device"`
	Start  time.Duration `json:"start"`
	End    time.Duration `json:"end"`
	Detail string        `json:"detail"`
}

// traceRecord mirrors the trace.JobTrace JSON.
type traceRecord struct {
	Job    string      `json:"job"`
	Class  string      `json:"class"`
	Device string      `json:"device"`
	State  string      `json:"state"`
	Spans  []traceSpan `json:"spans"`
}

// traceJob renders one job's trace from the flight recorder as a stage
// waterfall: per stage, the simulation-time offset it began at, how long it
// took, and the policy annotation.
func traceJob(endpoint, id string, out io.Writer) error {
	token, err := openSession(endpoint, "qctl")
	if err != nil {
		return err
	}
	defer closeSession(endpoint, token)
	body, err := request(http.MethodGet, endpoint+"/api/v1/trace/"+id, token)
	if err != nil {
		return err
	}
	var t traceRecord
	if err := json.Unmarshal(body, &t); err != nil {
		return fmt.Errorf("parsing trace: %w", err)
	}
	state := t.State
	if state == "" {
		state = "live"
	}
	fmt.Fprintf(out, "trace %s: class %s, device %s, %s\n", t.Job, t.Class, orDash(t.Device), state)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "STAGE\tAT\tDUR\tDEVICE\tDETAIL")
	for _, s := range t.Spans {
		fmt.Fprintf(tw, "%s\t+%s\t%s\t%s\t%s\n",
			s.Stage, s.Start, s.End-s.Start, orDash(s.Device), s.Detail)
	}
	return tw.Flush()
}

// traceList summarizes every trace the flight recorder still holds.
func traceList(endpoint string, out io.Writer) error {
	token, err := openSession(endpoint, "qctl")
	if err != nil {
		return err
	}
	defer closeSession(endpoint, token)
	body, err := request(http.MethodGet, endpoint+"/api/v1/trace", token)
	if err != nil {
		return err
	}
	var listing struct {
		Live int           `json:"live"`
		Done int           `json:"done"`
		Jobs []traceRecord `json:"jobs"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		return fmt.Errorf("parsing trace listing: %w", err)
	}
	fmt.Fprintf(out, "flight recorder: %d live, %d terminal\n", listing.Live, listing.Done)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "JOB\tCLASS\tDEVICE\tSTATE\tSPANS")
	for _, t := range listing.Jobs {
		state := t.State
		if state == "" {
			state = "live"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\n", t.Job, t.Class, orDash(t.Device), state, len(t.Spans))
	}
	return tw.Flush()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// openSession creates a throwaway user session and returns its token.
func openSession(endpoint, user string) (string, error) {
	payload, _ := json.Marshal(map[string]string{"user": user})
	resp, err := http.Post(endpoint+"/api/v1/sessions", "application/json", bytes.NewReader(payload))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode >= 300 {
		return "", fmt.Errorf("opening session: HTTP %d: %s", resp.StatusCode, body)
	}
	var s struct {
		Token string `json:"token"`
	}
	if err := json.Unmarshal(body, &s); err != nil {
		return "", err
	}
	return s.Token, nil
}

// closeSession best-effort closes the throwaway session.
func closeSession(endpoint, token string) {
	req, err := http.NewRequest(http.MethodDelete, endpoint+"/api/v1/sessions", nil)
	if err != nil {
		return
	}
	req.Header.Set("Authorization", "Bearer "+token)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}
