// Command qctl is the hosting-site administration CLI for the middleware
// daemon: device status, job listing, maintenance windows, recalibration and
// the gated low-level control operations (paper §2.5, §3.6).
//
// Usage:
//
//	qctl -endpoint http://node:8080 -token ADMIN_TOKEN status
//	qctl ... jobs
//	qctl ... op recalibrate|qa_check|maintenance_on|maintenance_off
//	qctl ... metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
)

func main() {
	endpoint := flag.String("endpoint", "http://127.0.0.1:8080", "daemon endpoint")
	token := flag.String("token", "", "admin token")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "qctl: need a subcommand: status, jobs, op <name>, metrics")
		os.Exit(2)
	}
	if err := run(*endpoint, *token, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "qctl:", err)
		os.Exit(1)
	}
}

func run(endpoint, token string, args []string) error {
	switch args[0] {
	case "status":
		return get(endpoint+"/admin/v1/status", token)
	case "jobs":
		return get(endpoint+"/admin/v1/jobs", token)
	case "metrics":
		return get(endpoint+"/metrics", "")
	case "op":
		if len(args) < 2 {
			return fmt.Errorf("op needs an operation name")
		}
		return post(endpoint+"/admin/v1/lowlevel/"+args[1], token)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func do(method, url, token string) error {
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
	}
	fmt.Println(string(body))
	return nil
}

func get(url, token string) error  { return do(http.MethodGet, url, token) }
func post(url, token string) error { return do(http.MethodPost, url, token) }
