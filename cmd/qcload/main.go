// Command qcload is the trace-driven load-generation and policy what-if
// toolchain for the middleware fleet:
//
//	qcload gen     --out trace.jsonl [--process poisson|bursty|diurnal]
//	               [--rate 150] [--duration 24h] [--seed 1] [--users 8]
//	               [--class-mix 1:2:7] [--pattern-mix 1:1:2] [--programs N]
//	               [--deadlines]
//	qcload capture --out trace.jsonl [--router least-loaded] [--scheduler fifo]
//	               [--admission accept-all] [--duration 24h] [--users 16]
//	               [--think 5m] [--devices 4] [--seed 1]
//	qcload import  --in jobs.swf --out trace.jsonl [--format swf|sacct]
//	               [--scale 1.0] [--max-jobs N]
//	qcload info    --trace trace.jsonl
//	qcload replay  --trace trace.jsonl [--router least-loaded] [--scheduler fifo]
//	               [--admission accept-all] [--priority constant] [--devices 4]
//	               [--seed 1] [--cache 0] [--setup 0]
//	qcload sweep   --trace trace.jsonl [--routers all] [--schedulers all]
//	               [--admissions all] [--priorities constant] [--devices 4]
//	               [--fleets 2,4,8] [--preemption on,off] [--rate-scales 1,2]
//	               [--shot-scales 1] [--workers GOMAXPROCS] [--seed 1]
//	               [--out report.json] [--tracing=true] [--cache 0] [--setup 0]
//	qcload saturate --trace trace.jsonl [--routers all] [--schedulers all]
//	               [--admissions accept-all] [--priorities constant]
//	               [--devices 4] [--fleets 2,4,8] [--objective p99-wait]
//	               [--target 120] [--max-scale 64] [--tolerance 0.05]
//	               [--cost-per-device-hour 1] [--workers GOMAXPROCS]
//	               [--seed 1] [--out frontier.json]
//	qcload trace export --trace trace.jsonl --out spans.json
//	               [--router least-loaded] [--scheduler fifo]
//	               [--admission accept-all] [--priority constant]
//	               [--devices 4] [--seed 1]
//
// gen synthesizes an open-loop trace from an arrival process. capture records
// arrivals from a live closed-loop fleet run (completion-driven submitters)
// executed under any router × scheduler × admission policy triple — the
// knobs matter because closed-loop arrivals are completion-coupled. import
// converts an archived scheduler log — Parallel Workloads Archive SWF, or
// Slurm `sacct --parsable2` accounting output — into the trace format.
// replay runs one trace against one policy triple on a virtual clock and
// prints the SLO report. sweep replays the trace against the whole
// router × scheduler × admission matrix concurrently and writes a
// machine-readable comparison — the same trace and seed always produce
// byte-identical output. replay and sweep run with span tracing on by
// default, which adds a per-class, per-stage latency breakdown (validate,
// admission, route, queued, requeued, execute) to each SLO report cell;
// --tracing=false turns it off (the schedule itself is identical either
// way). Router axis values may be parameterized scorer-weight spellings like
// affinity:load=0.6:affinity=0.3:cap=0.1 (commas split the axis, so colons
// inside one router name survive); --cache/--setup size the per-partition
// program cache and the cold-setup cost a miss pays, the model the affinity
// router exploits. --priority (replay) and --priorities (sweep axis) pick the
// dynamic-urgency policy composing with the within-class order: constant,
// age, slo-urgency, edf — the deadline-driven pair also takes inline
// fallback-deadline parameters like slo-urgency:deadline=120s or
// edf:production=90s, and reads the per-job deadlines that `gen --deadlines`
// stamps from the per-class contracts. The sweep priority axis defaults to
// the constant singleton (not all) so existing sweeps keep their exact
// combination list; pass --priorities all to expand it.
// trace export replays a trace with the flight recorder attached and
// writes the full span set as Chrome trace-event JSON — open it in Perfetto
// (or chrome://tracing) to see partitions as busy/idle tracks and every
// job's lifecycle as a waterfall.
//
// sweep also crosses the generalized axes when named: --fleets (fleet
// sizes), --preemption (on,off), --rate-scales (arrival-rate multipliers —
// in-memory time compression, no trace rewrite) and --shot-scales (device
// speed multipliers). Cells run on a bounded worker pool (--workers, default
// GOMAXPROCS); the worker count changes wall clock only, never report bytes.
// saturate is the capacity-planning search: per policy tuple × fleet size it
// binary-searches the arrival-rate multiplier to the knee where the
// production objective (--objective p99-wait: p99 wait ≤ --target seconds;
// deadline-hit: hit rate ≥ --target) blows past target, and writes the
// deterministic capacity-frontier report — max sustainable rate per tuple
// plus a cost-per-met-SLO ranking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"hpcqc/internal/loadgen"
	"hpcqc/internal/trace"
	"hpcqc/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qcload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("need a subcommand: gen, capture, import, info, replay, sweep, saturate, trace")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:])
	case "capture":
		return runCapture(args[1:])
	case "import":
		return runImport(args[1:])
	case "info":
		return runInfo(args[1:], out)
	case "replay":
		return runReplay(args[1:], out)
	case "sweep":
		return runSweep(args[1:], out)
	case "saturate":
		return runSaturate(args[1:], out)
	case "trace":
		if len(args) < 2 || args[1] != "export" {
			return fmt.Errorf("trace: need a subcommand: export")
		}
		return runTraceExport(args[2:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (gen, capture, import, info, replay, sweep, saturate, trace)", args[0])
	}
}

// parseTriple parses "a:b:c" weight strings like 1:2:7.
func parseTriple(s, what string) ([3]int, error) {
	var out [3]int
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return out, fmt.Errorf("%s must be three ints a:b:c, got %q", what, s)
	}
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return out, fmt.Errorf("%s element %q invalid", what, p)
		}
		out[i] = n
	}
	return out, nil
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	out := fs.String("out", "", "trace file to write (required)")
	mode := fs.String("mode", "open", "open (arrival process); closed-loop capture moved to the capture subcommand")
	process := fs.String("process", "poisson", "arrival process: poisson, bursty, diurnal")
	rate := fs.Float64("rate", 150, "mean arrival rate in jobs/hour")
	duration := fs.Duration("duration", 24*time.Hour, "trace horizon in simulation time")
	seed := fs.Int64("seed", 1, "generation seed")
	users := fs.Int("users", 8, "submitter pool size")
	classMix := fs.String("class-mix", "1:2:7", "production:test:dev weights")
	patternMix := fs.String("pattern-mix", "1:1:2", "qc-heavy:cc-heavy:balanced weights")
	programs := fs.Int("programs", 0, "fixed per-pattern program variants (repeated-program workload; 0 = continuous jitter)")
	deadlines := fs.Bool("deadlines", false, "stamp per-job completion deadlines from the per-class default contracts")
	// Accepted but unused: the old closed-mode flags still parse so a
	// pre-capture invocation reaches the migration error below instead of
	// dying on an unknown flag.
	fs.Duration("think", 5*time.Minute, "deprecated (closed-loop capture moved to the capture subcommand)")
	fs.Int("devices", 4, "deprecated (closed-loop capture moved to the capture subcommand)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: --out is required")
	}
	if *mode != "open" {
		// One code path and one defaults table per operation: closed-loop
		// capture lives in the capture subcommand, which also takes the
		// policy triple driving the run.
		return fmt.Errorf("gen: mode %q not supported; use 'qcload capture' for closed-loop traces", *mode)
	}
	cm, err := parseTriple(*classMix, "--class-mix")
	if err != nil {
		return err
	}
	pm, err := parseTriple(*patternMix, "--pattern-mix")
	if err != nil {
		return err
	}
	proc, err := loadgen.NewProcess(*process, *rate)
	if err != nil {
		return err
	}
	genCfg := loadgen.Config{
		Seed: *seed, Horizon: *duration, Process: proc,
		Classes:  loadgen.ClassMix{Production: cm[0], Test: cm[1], Dev: cm[2]},
		Patterns: workload.Mix{QCHeavy: pm[0], CCHeavy: pm[1], Balanced: pm[2]},
		Users:    *users,
		Programs: *programs,
	}
	if *deadlines {
		// Deadline stamping is a pure function of already-drawn fields, so
		// the arrivals match the unstamped trace record for record.
		genCfg.Deadlines = workload.DefaultDeadlines()
	}
	tr, err := loadgen.Generate(genCfg)
	if err != nil {
		return err
	}
	if err := tr.WriteFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "qcload: wrote %d jobs over %s to %s (%s/%s)\n",
		tr.Header.Jobs, tr.Header.Horizon(), *out, tr.Header.Mode, tr.Header.Process)
	return nil
}

// runCapture is the closed-loop capture path: run a live fleet under a
// chosen policy triple and record the arrivals. It replaces the old
// `gen --mode closed`, which predated the policy knobs and always captured
// under the defaults.
func runCapture(args []string) error {
	fs := flag.NewFlagSet("capture", flag.ContinueOnError)
	out := fs.String("out", "", "trace file to write (required)")
	router := fs.String("router", "least-loaded", "routing policy driving the capture run")
	scheduler := fs.String("scheduler", "fifo", "within-class order driving the capture run")
	admission := fs.String("admission", "accept-all", "admission policy driving the capture run")
	duration := fs.Duration("duration", 24*time.Hour, "capture horizon in simulation time")
	seed := fs.Int64("seed", 1, "capture seed")
	users := fs.Int("users", 16, "concurrent closed-loop users")
	think := fs.Duration("think", 5*time.Minute, "mean think time between jobs")
	devices := fs.Int("devices", 4, "fleet size driven during capture")
	classMix := fs.String("class-mix", "1:2:7", "production:test:dev weights")
	patternMix := fs.String("pattern-mix", "1:1:2", "qc-heavy:cc-heavy:balanced weights")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("capture: --out is required")
	}
	cm, err := parseTriple(*classMix, "--class-mix")
	if err != nil {
		return err
	}
	pm, err := parseTriple(*patternMix, "--pattern-mix")
	if err != nil {
		return err
	}
	tr, err := loadgen.GenerateClosedLoop(loadgen.ClosedLoopConfig{
		Seed: *seed, Horizon: *duration, Users: *users, ThinkMean: *think,
		Devices: *devices,
		Router:  *router, Scheduler: *scheduler, Admission: *admission,
		Classes:  loadgen.ClassMix{Production: cm[0], Test: cm[1], Dev: cm[2]},
		Patterns: workload.Mix{QCHeavy: pm[0], CCHeavy: pm[1], Balanced: pm[2]},
	})
	if err != nil {
		return err
	}
	if err := tr.WriteFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "qcload: captured %d arrivals over %s to %s (%s/%s/%s)\n",
		tr.Header.Jobs, tr.Header.Horizon(), *out, *router, *scheduler, *admission)
	return nil
}

// runImport converts an archived scheduler log into the trace format.
func runImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ContinueOnError)
	in := fs.String("in", "", "input workload file (required)")
	out := fs.String("out", "", "trace file to write (required)")
	format := fs.String("format", "swf", "input format (swf: Parallel Workloads Archive standard workload format; sacct: Slurm sacct --parsable2 output)")
	scale := fs.Float64("scale", 1.0, "service-time scale from log seconds to QPU seconds")
	maxJobs := fs.Int("max-jobs", 0, "cap on imported jobs (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("import: --in and --out are required")
	}
	var tr *loadgen.Trace
	var err error
	switch *format {
	case "swf":
		tr, err = loadgen.ImportSWFFile(*in, loadgen.SWFOptions{ServiceScale: *scale, MaxJobs: *maxJobs})
	case "sacct":
		tr, err = loadgen.ImportSacctFile(*in, loadgen.SacctOptions{ServiceScale: *scale, MaxJobs: *maxJobs})
	default:
		return fmt.Errorf("import: unknown format %q (swf, sacct)", *format)
	}
	if err != nil {
		return err
	}
	if err := tr.WriteFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "qcload: imported %d jobs over %s from %s to %s\n",
		tr.Header.Jobs, tr.Header.Horizon(), *in, *out)
	return nil
}

func runInfo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	trace := fs.String("trace", "", "trace file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trace == "" {
		return fmt.Errorf("info: --trace is required")
	}
	tr, err := loadgen.ReadTraceFile(*trace)
	if err != nil {
		return err
	}
	classes := map[string]int{}
	users := map[string]bool{}
	totalQPU := 0.0
	for _, r := range tr.Records {
		classes[r.Class]++
		users[r.User] = true
		totalQPU += r.ExpectedQPUSeconds
	}
	return json.NewEncoder(out).Encode(map[string]any{
		"header":               tr.Header,
		"jobs_by_class":        classes,
		"distinct_users":       len(users),
		"offered_qpu_seconds":  totalQPU,
		"mean_service_seconds": totalQPU / float64(max(1, len(tr.Records))),
	})
}

func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	trace := fs.String("trace", "", "trace file (required)")
	router := fs.String("router", "least-loaded", "routing policy")
	scheduler := fs.String("scheduler", "fifo", "within-class order: fifo, fair-share, shortest-first")
	admission := fs.String("admission", "accept-all", "admission policy: accept-all, queue-depth, token-bucket, slo-guard")
	priority := fs.String("priority", "constant", "dynamic-urgency axis: constant, age, slo-urgency[:key=DUR...], edf[:key=DUR...]")
	devices := fs.Int("devices", 4, "fleet size")
	seed := fs.Int64("seed", 1, "replay seed")
	tracing := fs.Bool("tracing", true, "attach span tracing and report per-stage latency breakdown")
	cacheSize := fs.Int("cache", 0, "per-partition program-cache entries (0 = caching off)")
	setup := fs.Float64("setup", 0, "cold-setup QPU seconds a program-cache miss pays (requires --cache)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trace == "" {
		return fmt.Errorf("replay: --trace is required")
	}
	tr, err := loadgen.ReadTraceFile(*trace)
	if err != nil {
		return err
	}
	rep, err := loadgen.Replay(tr, loadgen.ReplayConfig{
		Devices: *devices, Router: *router, Scheduler: *scheduler, Admission: *admission, Priority: *priority, Seed: *seed,
		Tracing: *tracing, ProgramCache: *cacheSize, SetupSeconds: *setup,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func runSweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	trace := fs.String("trace", "", "trace file (required)")
	routers := fs.String("routers", "all", "comma-separated router axis, or all")
	schedulers := fs.String("schedulers", "all", "comma-separated scheduler axis, or all")
	admissions := fs.String("admissions", "all", "comma-separated admission axis, or all")
	priorities := fs.String("priorities", "constant", "comma-separated priority axis, or all (defaults to the constant singleton, not all)")
	devices := fs.Int("devices", 4, "fleet size per combination (when --fleets is unset)")
	fleets := fs.String("fleets", "", "comma-separated fleet-size axis (overrides --devices when set)")
	preemption := fs.String("preemption", "", "comma-separated preemption axis: on, off (default on only)")
	rateScales := fs.String("rate-scales", "", "comma-separated arrival-rate multiplier axis (default 1)")
	shotScales := fs.String("shot-scales", "", "comma-separated device shot-rate multiplier axis (default 1)")
	workers := fs.Int("workers", 0, "bounded worker pool size (0 = GOMAXPROCS); never affects report bytes")
	seed := fs.Int64("seed", 1, "replay seed shared by every combination")
	outPath := fs.String("out", "", "report file (default stdout)")
	tracing := fs.Bool("tracing", true, "attach span tracing and report per-stage latency breakdown per cell")
	cacheSize := fs.Int("cache", 0, "per-partition program-cache entries shared by every combination (0 = caching off)")
	setup := fs.Float64("setup", 0, "cold-setup QPU seconds a program-cache miss pays (requires --cache)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trace == "" {
		return fmt.Errorf("sweep: --trace is required")
	}
	fleetAxis, err := splitInts(*fleets, "--fleets")
	if err != nil {
		return err
	}
	rateAxis, err := splitFloats(*rateScales, "--rate-scales")
	if err != nil {
		return err
	}
	shotAxis, err := splitFloats(*shotScales, "--shot-scales")
	if err != nil {
		return err
	}
	tr, err := loadgen.ReadTraceFile(*trace)
	if err != nil {
		return err
	}
	start := time.Now()
	rep, err := loadgen.Sweep(tr, loadgen.SweepConfig{
		Devices:      *devices,
		Seed:         *seed,
		Routers:      splitAxis(*routers),
		Schedulers:   splitAxis(*schedulers),
		Admissions:   splitAxis(*admissions),
		Priorities:   splitAxis(*priorities),
		FleetSizes:   fleetAxis,
		Preemptions:  splitAxis(*preemption),
		RateScales:   rateAxis,
		ShotScales:   shotAxis,
		Workers:      *workers,
		Tracing:      *tracing,
		ProgramCache: *cacheSize,
		SetupSeconds: *setup,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "qcload: swept %d jobs × %d policy combinations in %s\n",
		tr.Header.Jobs, len(rep.Results), time.Since(start).Round(time.Millisecond))
	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runSaturate is the capacity-planning search: per policy tuple × fleet
// size, binary-search the arrival-rate multiplier to the knee where the
// production objective blows past target, and emit the capacity-frontier
// report. Defaults differ from sweep where capacity planning wants them to:
// the admission axis defaults to accept-all (an admission throttle changes
// what "sustainable" means — cross it explicitly when that is the question).
func runSaturate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("saturate", flag.ContinueOnError)
	trace := fs.String("trace", "", "trace file (required)")
	routers := fs.String("routers", "all", "comma-separated router axis, or all")
	schedulers := fs.String("schedulers", "all", "comma-separated scheduler axis, or all")
	admissions := fs.String("admissions", "accept-all", "comma-separated admission axis, or all")
	priorities := fs.String("priorities", "constant", "comma-separated priority axis, or all")
	devices := fs.Int("devices", 4, "fleet size per tuple (when --fleets is unset)")
	fleets := fs.String("fleets", "", "comma-separated fleet-size axis (overrides --devices when set)")
	objective := fs.String("objective", loadgen.ObjectiveP99Wait, "knee objective: p99-wait (production p99 wait ≤ target seconds) or deadline-hit (hit rate ≥ target)")
	target := fs.Float64("target", 0, "objective target: seconds for p99-wait (default 120), a rate in (0,1] for deadline-hit (default 0.95)")
	maxScale := fs.Float64("max-scale", 0, "search cap on the rate multiplier (default 64)")
	tolerance := fs.Float64("tolerance", 0, "relative knee precision: bisection stops at hi/lo ≤ 1+tolerance (default 0.05)")
	cost := fs.Float64("cost-per-device-hour", 0, "price of one partition-hour for the cost ranking (default 1)")
	workers := fs.Int("workers", 0, "bounded tuple worker pool size (0 = GOMAXPROCS); never affects report bytes")
	seed := fs.Int64("seed", 1, "replay seed shared by every probe")
	outPath := fs.String("out", "", "frontier report file (default stdout)")
	cacheSize := fs.Int("cache", 0, "per-partition program-cache entries for every probe (0 = caching off)")
	setup := fs.Float64("setup", 0, "cold-setup QPU seconds a program-cache miss pays (requires --cache)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trace == "" {
		return fmt.Errorf("saturate: --trace is required")
	}
	fleetAxis, err := splitInts(*fleets, "--fleets")
	if err != nil {
		return err
	}
	cfg := loadgen.SaturateConfig{
		Devices:           *devices,
		FleetSizes:        fleetAxis,
		Seed:              *seed,
		Routers:           splitAxis(*routers),
		Schedulers:        splitAxis(*schedulers),
		Admissions:        splitAxis(*admissions),
		Priorities:        splitAxis(*priorities),
		Objective:         *objective,
		MaxScale:          *maxScale,
		Tolerance:         *tolerance,
		Workers:           *workers,
		CostPerDeviceHour: *cost,
		ProgramCache:      *cacheSize,
		SetupSeconds:      *setup,
	}
	if *target != 0 {
		if *objective == loadgen.ObjectiveDeadlineHit {
			cfg.TargetHitRate = *target
		} else {
			cfg.TargetSeconds = *target
		}
	}
	tr, err := loadgen.ReadTraceFile(*trace)
	if err != nil {
		return err
	}
	start := time.Now()
	rep, err := loadgen.Saturate(tr, cfg)
	if err != nil {
		return err
	}
	probes := 0
	for _, pt := range rep.Points {
		probes += pt.Probes
	}
	fmt.Fprintf(os.Stderr, "qcload: found %d capacity knees (%d probes × %d jobs) in %s\n",
		len(rep.Points), probes, tr.Header.Jobs, time.Since(start).Round(time.Millisecond))
	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runTraceExport replays a trace with the flight recorder attached and
// writes every span — one track per partition (busy/idle occupancy), one
// per job (lifecycle waterfall) — as Chrome trace-event JSON for Perfetto.
func runTraceExport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace export", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "trace file (required)")
	router := fs.String("router", "least-loaded", "routing policy")
	scheduler := fs.String("scheduler", "fifo", "within-class order: fifo, fair-share, shortest-first")
	admission := fs.String("admission", "accept-all", "admission policy: accept-all, queue-depth, token-bucket, slo-guard")
	priority := fs.String("priority", "constant", "dynamic-urgency axis: constant, age, slo-urgency[:key=DUR...], edf[:key=DUR...]")
	devices := fs.Int("devices", 4, "fleet size")
	seed := fs.Int64("seed", 1, "replay seed")
	outPath := fs.String("out", "", "trace-event JSON file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("trace export: --trace is required")
	}
	tr, err := loadgen.ReadTraceFile(*tracePath)
	if err != nil {
		return err
	}
	// Size the recorder to hold every job's trace: a replay-wide export is a
	// full recording, not a flight-recorder tail.
	rec := trace.NewFlightRecorder(max(1, len(tr.Records)))
	if _, err := loadgen.Replay(tr, loadgen.ReplayConfig{
		Devices: *devices, Router: *router, Scheduler: *scheduler, Admission: *admission, Priority: *priority, Seed: *seed,
		SpanListener: rec.Observe,
	}); err != nil {
		return err
	}
	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteChrome(w, rec.Jobs(), rec.Occupancy()); err != nil {
		return err
	}
	live, done := rec.Len()
	fmt.Fprintf(os.Stderr, "qcload: exported %d job traces across %d partitions (%s/%s/%s)\n",
		live+done, *devices, *router, *scheduler, *admission)
	return nil
}

// splitAxis turns a comma-separated flag value into a policy axis.
func splitAxis(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitInts parses a comma-separated integer axis like --fleets 2,4,8.
func splitInts(s, what string) ([]int, error) {
	var out []int
	for _, p := range splitAxis(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("%s element %q is not an integer", what, p)
		}
		out = append(out, n)
	}
	return out, nil
}

// splitFloats parses a comma-separated float axis like --rate-scales 1,2,4.
func splitFloats(s, what string) ([]float64, error) {
	var out []float64
	for _, p := range splitAxis(s) {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("%s element %q is not a number", what, p)
		}
		out = append(out, f)
	}
	return out, nil
}
