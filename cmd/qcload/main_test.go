package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpcqc/internal/loadgen"
)

func TestQcloadGenInfoReplaySweep(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	if err := run([]string{"gen", "--out", trace, "--duration", "1h", "--rate", "120", "--seed", "7"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	tr, err := loadgen.ReadTraceFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Jobs < 60 {
		t.Fatalf("1h at 120/h generated %d jobs", tr.Header.Jobs)
	}

	var info bytes.Buffer
	if err := run([]string{"info", "--trace", trace}, &info); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.String(), "jobs_by_class") {
		t.Fatalf("info output missing summary: %s", info.String())
	}

	var replay bytes.Buffer
	if err := run([]string{"replay", "--trace", trace, "--devices", "2", "--router", "round-robin", "--scheduler", "shortest-first"}, &replay); err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(replay.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Router != "round-robin" || rep.Scheduler != "shortest-first" || rep.Completed == 0 {
		t.Fatalf("replay report = %+v", rep)
	}

	// Sweep a reduced matrix twice: same trace + seed must be byte-identical
	// (the CLI-level determinism the acceptance criterion names).
	sweepArgs := []string{"sweep", "--trace", trace, "--devices", "2",
		"--routers", "least-loaded,class-affinity", "--schedulers", "fifo",
		"--admissions", "accept-all"}
	var s1, s2 bytes.Buffer
	if err := run(sweepArgs, &s1); err != nil {
		t.Fatal(err)
	}
	if err := run(sweepArgs, &s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatal("sweep output not deterministic")
	}
	var sr loadgen.SweepReport
	if err := json.Unmarshal(s1.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 2 {
		t.Fatalf("sweep produced %d results, want 2", len(sr.Results))
	}

	// --out writes the same report to a file.
	outFile := filepath.Join(dir, "report.json")
	if err := run(append(sweepArgs, "--out", outFile), os.Stdout); err != nil {
		t.Fatal(err)
	}
	fromFile, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile, s1.Bytes()) {
		t.Fatal("file report differs from stdout report")
	}
}

// TestQcloadSweepSaturateSmoke is the capacity-planning smoke: a wide-axis
// sweep on a bounded worker pool and a saturate search, each run twice
// through the real CLI, must be byte-identical — and fast enough to ride in
// every `make test` / `make test-full` run.
func TestQcloadSweepSaturateSmoke(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	if err := run([]string{"gen", "--out", trace, "--duration", "30m", "--rate", "120", "--seed", "9"}, os.Stdout); err != nil {
		t.Fatal(err)
	}

	// Generalized axes × explicit worker count: 1 router × 1 scheduler × 1
	// admission × 2 fleets × 2 preemption × 2 rates = 16 cells on 2 workers.
	sweepArgs := []string{"sweep", "--trace", trace, "--workers", "2",
		"--routers", "least-loaded", "--schedulers", "fifo", "--admissions", "accept-all",
		"--fleets", "1,2", "--preemption", "on,off", "--rate-scales", "1,2",
		"--shot-scales", "1,2", "--tracing=false"}
	var s1, s2 bytes.Buffer
	if err := run(sweepArgs, &s1); err != nil {
		t.Fatal(err)
	}
	if err := run(sweepArgs, &s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatal("generalized sweep output not deterministic")
	}
	var sr loadgen.SweepReport
	if err := json.Unmarshal(s1.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 16 {
		t.Fatalf("generalized sweep produced %d cells, want 16", len(sr.Results))
	}
	if sr.FindCell(loadgen.Cell{Router: "least-loaded", Scheduler: "fifo", Admission: "accept-all",
		FleetSize: 2, Preemption: "off", RateScale: 2, ShotScale: 2}) == nil {
		t.Fatal("generalized cell missing from CLI sweep report")
	}

	satArgs := []string{"saturate", "--trace", trace,
		"--routers", "least-loaded", "--schedulers", "fifo", "--admissions", "accept-all",
		"--fleets", "1,2", "--max-scale", "8", "--tolerance", "0.25", "--workers", "2"}
	var f1, f2 bytes.Buffer
	if err := run(satArgs, &f1); err != nil {
		t.Fatal(err)
	}
	if err := run(satArgs, &f2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1.Bytes(), f2.Bytes()) {
		t.Fatal("saturate output not deterministic")
	}
	var fr loadgen.FrontierReport
	if err := json.Unmarshal(f1.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Points) != 2 || len(fr.Ranking) != 2 {
		t.Fatalf("frontier has %d points / %d ranks, want 2/2", len(fr.Points), len(fr.Ranking))
	}
	for _, pt := range fr.Points {
		if pt.Probes == 0 {
			t.Fatalf("tuple %s searched with zero probes", pt.Tuple())
		}
	}
}

// TestQcloadGenClosedPointsToCapture: the old closed-loop gen mode is
// superseded by the capture subcommand; the error says where to go, even
// for the full old invocation including the retired closed-mode flags.
func TestQcloadGenClosedPointsToCapture(t *testing.T) {
	err := run([]string{"gen", "--out", filepath.Join(t.TempDir(), "closed.jsonl"),
		"--mode", "closed", "--duration", "30m",
		"--users", "4", "--think", "1m", "--devices", "2", "--seed", "3"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "capture") {
		t.Fatalf("gen --mode closed = %v, want pointer to capture", err)
	}
}

// TestQcloadCapturePolicyFlags: capture records a closed-loop run under an
// explicit policy triple — the fix for capture being hardcoded to
// least-loaded/FIFO — and the result is deterministic per triple.
func TestQcloadCapturePolicyFlags(t *testing.T) {
	dir := t.TempDir()
	args := func(out string) []string {
		return []string{"capture", "--out", out, "--duration", "30m",
			"--users", "4", "--think", "1m", "--devices", "2", "--seed", "3",
			"--router", "round-robin", "--scheduler", "shortest-first", "--admission", "token-bucket"}
	}
	t1 := filepath.Join(dir, "t1.jsonl")
	t2 := filepath.Join(dir, "t2.jsonl")
	if err := run(args(t1), os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run(args(t2), os.Stdout); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(t1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(t2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("capture under explicit policies not deterministic")
	}
	tr, err := loadgen.ReadTraceFile(t1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Mode != "recorded" || tr.Header.Jobs == 0 {
		t.Fatalf("capture header = %+v", tr.Header)
	}
	// A different policy triple yields a different completion-coupled trace.
	t3 := filepath.Join(dir, "t3.jsonl")
	if err := run([]string{"capture", "--out", t3, "--duration", "30m",
		"--users", "4", "--think", "1m", "--devices", "2", "--seed", "3"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	b3, err := os.ReadFile(t3)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b3) {
		t.Fatal("policy triple had no effect on the captured trace")
	}
}

// TestQcloadImportSWF: the import subcommand converts an SWF log into a
// replayable trace.
func TestQcloadImportSWF(t *testing.T) {
	dir := t.TempDir()
	swf := filepath.Join(dir, "jobs.swf")
	if err := os.WriteFile(swf, []byte(strings.Join([]string{
		"; UnitTest SWF fixture",
		"1 0 10 30 4 -1 -1 4 60 -1 1 7 1 1 1 1 -1 -1",
		"2 60 5 45 2 -1 -1 2 60 -1 1 8 1 1 2 1 -1 -1",
		"3 120 0 20 1 -1 -1 1 30 -1 1 7 1 1 3 1 -1 -1",
	}, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := filepath.Join(dir, "imported.jsonl")
	if err := run([]string{"import", "--in", swf, "--out", trace}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	tr, err := loadgen.ReadTraceFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Mode != "imported" || tr.Header.Process != "swf" || tr.Header.Jobs != 3 {
		t.Fatalf("imported header = %+v", tr.Header)
	}
	var rep bytes.Buffer
	if err := run([]string{"replay", "--trace", trace, "--devices", "1"}, &rep); err != nil {
		t.Fatal(err)
	}
	var report loadgen.Report
	if err := json.Unmarshal(rep.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.Completed != 3 {
		t.Fatalf("imported replay completed %d/3", report.Completed)
	}
}

func TestQcloadErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"gen"},
		{"gen", "--out", "/tmp/x.jsonl", "--mode", "sideways"},
		{"gen", "--out", "/tmp/x.jsonl", "--process", "fractal"},
		{"gen", "--out", "/tmp/x.jsonl", "--class-mix", "1:2"},
		{"capture"},
		{"capture", "--out", "/tmp/x.jsonl", "--admission", "bouncer"},
		{"capture", "--out", "/tmp/x.jsonl", "--router", "warp"},
		{"import"},
		{"import", "--in", "/does/not/exist.swf", "--out", "/tmp/x.jsonl"},
		{"import", "--in", "/tmp/x.swf", "--out", "/tmp/x.jsonl", "--format", "pbs"},
		{"info"},
		{"replay"},
		{"replay", "--trace", "/does/not/exist.jsonl"},
		{"sweep"},
		{"sweep", "--trace", "/does/not/exist.jsonl", "--fleets", "two"},
		{"sweep", "--trace", "/does/not/exist.jsonl", "--rate-scales", "fast"},
		{"saturate"},
		{"saturate", "--trace", "/does/not/exist.jsonl"},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
