package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpcqc/internal/loadgen"
)

func TestQcloadGenInfoReplaySweep(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	if err := run([]string{"gen", "--out", trace, "--duration", "1h", "--rate", "120", "--seed", "7"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	tr, err := loadgen.ReadTraceFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Jobs < 60 {
		t.Fatalf("1h at 120/h generated %d jobs", tr.Header.Jobs)
	}

	var info bytes.Buffer
	if err := run([]string{"info", "--trace", trace}, &info); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.String(), "jobs_by_class") {
		t.Fatalf("info output missing summary: %s", info.String())
	}

	var replay bytes.Buffer
	if err := run([]string{"replay", "--trace", trace, "--devices", "2", "--router", "round-robin", "--scheduler", "shortest-first"}, &replay); err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(replay.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Router != "round-robin" || rep.Scheduler != "shortest-first" || rep.Completed == 0 {
		t.Fatalf("replay report = %+v", rep)
	}

	// Sweep a reduced matrix twice: same trace + seed must be byte-identical
	// (the CLI-level determinism the acceptance criterion names).
	sweepArgs := []string{"sweep", "--trace", trace, "--devices", "2",
		"--routers", "least-loaded,class-affinity", "--schedulers", "fifo"}
	var s1, s2 bytes.Buffer
	if err := run(sweepArgs, &s1); err != nil {
		t.Fatal(err)
	}
	if err := run(sweepArgs, &s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatal("sweep output not deterministic")
	}
	var sr loadgen.SweepReport
	if err := json.Unmarshal(s1.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 2 {
		t.Fatalf("sweep produced %d results, want 2", len(sr.Results))
	}

	// --out writes the same report to a file.
	outFile := filepath.Join(dir, "report.json")
	if err := run(append(sweepArgs, "--out", outFile), os.Stdout); err != nil {
		t.Fatal(err)
	}
	fromFile, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile, s1.Bytes()) {
		t.Fatal("file report differs from stdout report")
	}
}

func TestQcloadClosedLoopGen(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "closed.jsonl")
	if err := run([]string{"gen", "--out", trace, "--mode", "closed", "--duration", "30m",
		"--users", "4", "--think", "1m", "--devices", "2", "--seed", "3"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	tr, err := loadgen.ReadTraceFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Mode != "recorded" || tr.Header.Jobs == 0 {
		t.Fatalf("closed-loop trace header = %+v", tr.Header)
	}
}

func TestQcloadErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"gen"},
		{"gen", "--out", "/tmp/x.jsonl", "--mode", "sideways"},
		{"gen", "--out", "/tmp/x.jsonl", "--process", "fractal"},
		{"gen", "--out", "/tmp/x.jsonl", "--class-mix", "1:2"},
		{"info"},
		{"replay"},
		{"replay", "--trace", "/does/not/exist.jsonl"},
		{"sweep"},
	} {
		if err := run(args, os.Stdout); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
