// Command benchdiff compares two test2json benchmark recordings (the
// BENCH_fleet.json format written by `make bench-json`) and fails when a
// throughput metric regresses past a threshold. It is the CI gate behind
// `make bench-diff`: the committed baseline is the contract, a fresh run is
// the candidate, and a >20 % drop in any jobs/wall-second metric is a build
// failure rather than a silent slide.
//
// Usage:
//
//	benchdiff [-threshold 0.20] [-metrics m1,m2] [-trace-overhead 0.10]
//	          [-priority-overhead 0.10] [-require b1,b2] baseline.json fresh.json
//
// Only explicitly guarded metrics are compared; ns/op and sim-time metrics
// vary with benchtime and fleet width in ways that are not regressions. The
// -metrics list is higher-is-better (a drop fails); the -lower-metrics list
// is lower-is-better (a rise fails) and guards the sweep engine's peak-heap
// bound. Benchmarks present in one file but not the other are
// reported but never fail the diff, so adding or renaming a benchmark does
// not require regenerating the baseline in the same commit — except the
// benchmarks named by -require, which must appear in both files: those are
// the gate's load-bearing members, and silently dropping one (a renamed
// benchmark, a stale baseline) would otherwise turn the gate into a no-op.
//
// Two intra-run rules ride along, both built on the same interleaved-ratio
// construction: a benchmark runs its instrumented and baseline variants back
// to back inside the same iterations and reports their cost ratio, which
// makes the rule immune both to machine-speed noise across files and to the
// heap-growth drift between benchmarks minutes apart in one run. The traced
// replay benchmark reports trace_overhead_pct, capped by -trace-overhead —
// span emission is sold as allocation-lean observation, and this is where
// that claim is enforced. The priority replay benchmark reports
// priority_overhead_pct — the cost of slo-urgency's per-dispatch backlog
// re-scoring over the constant policy's legacy pop — capped by
// -priority-overhead: the deadline axis must stay a scheduling knob, not a
// replay throughput tax.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// event is the subset of a test2json line benchdiff needs.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// defaultMetrics are the wall-clock throughput metrics guarded by default.
const defaultMetrics = "jobs_per_wall_s,replayed_jobs_per_wall_s,cells_per_wall_s"

// defaultLowerMetrics are the lower-is-better metrics guarded by default: a
// rise past the threshold fails. peak_heap_mb is the sweep engine's
// bounded-memory contract — the worker pool exists so a thousand-cell matrix
// holds a few cells of scratch, not a goroutine per cell — and this is where
// that bound is enforced.
const defaultLowerMetrics = "peak_heap_mb"

// parseFile reconstructs the benchmark result lines from a test2json stream
// and returns metric values per benchmark: bench → metric unit → value.
// test2json splits one logical result line across output events (the padded
// name ends one event, the numbers arrive in the next), so the stream's
// output text is reassembled before line parsing.
func parseFile(path string) (map[string]map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: not a test2json stream: %w", path, err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	results := make(map[string]map[string]float64)
	for _, line := range strings.Split(text.String(), "\n") {
		name, metrics, ok := parseResultLine(line)
		if !ok {
			continue
		}
		results[name] = metrics
	}
	return results, nil
}

// parseResultLine parses one `BenchmarkName  N  v1 unit1  v2 unit2 ...`
// result line. ok is false for non-result lines.
func parseResultLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	metrics := make(map[string]float64)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return fields[0], metrics, true
}

func main() {
	threshold := flag.Float64("threshold", 0.20, "maximum allowed fractional drop in a guarded metric")
	metricsFlag := flag.String("metrics", defaultMetrics, "comma-separated higher-is-better metrics to guard")
	lowerFlag := flag.String("lower-metrics", defaultLowerMetrics, "comma-separated lower-is-better metrics to guard (a rise past the threshold fails)")
	traceOverhead := flag.Float64("trace-overhead", 0.10, "maximum fractional jobs/wall-s cost of the traced replay vs the untraced one, same run")
	priorityOverhead := flag.Float64("priority-overhead", 0.10, "maximum fractional replay cost of the slo-urgency priority axis vs the constant default, same run")
	require := flag.String("require", "", "comma-separated benchmarks that must be present in both files")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.20] [-metrics m1,m2] [-trace-overhead 0.10] [-require b1,b2] baseline.json fresh.json")
		os.Exit(2)
	}
	baseline, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	guarded := make(map[string]bool)
	for _, m := range strings.Split(*metricsFlag, ",") {
		if m = strings.TrimSpace(m); m != "" {
			guarded[m] = true
		}
	}
	lower := make(map[string]bool)
	for _, m := range strings.Split(*lowerFlag, ",") {
		if m = strings.TrimSpace(m); m != "" {
			lower[m] = true
		}
	}
	// Required benchmarks must exist on both sides before any comparison:
	// a missing one means the gate would silently stop guarding it.
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		missing := false
		if _, ok := baseline[name]; !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: required benchmark %s absent from baseline %s\n", name, flag.Arg(0))
			missing = true
		}
		if _, ok := fresh[name]; !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: required benchmark %s absent from fresh run %s\n", name, flag.Arg(1))
			missing = true
		}
		if missing {
			os.Exit(1)
		}
	}

	benches := make([]string, 0, len(baseline))
	for name := range baseline {
		benches = append(benches, name)
	}
	// Sorted output keeps the diff log stable across runs.
	for i := 0; i < len(benches); i++ {
		for j := i + 1; j < len(benches); j++ {
			if benches[j] < benches[i] {
				benches[i], benches[j] = benches[j], benches[i]
			}
		}
	}

	failed := false
	compared := 0
	for _, name := range benches {
		fm, ok := fresh[name]
		if !ok {
			fmt.Printf("SKIP %s: absent from fresh run\n", name)
			continue
		}
		for metric, base := range baseline[name] {
			if (!guarded[metric] && !lower[metric]) || base <= 0 {
				continue
			}
			cur, ok := fm[metric]
			if !ok {
				fmt.Printf("SKIP %s %s: absent from fresh run\n", name, metric)
				continue
			}
			compared++
			change := (cur - base) / base
			status := "ok  "
			// Higher-is-better fails on a drop; lower-is-better on a rise.
			if lower[metric] {
				if change > *threshold {
					status = "FAIL"
					failed = true
				}
			} else if change < -*threshold {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s %s %s: baseline %.0f, fresh %.0f (%+.1f%%)\n",
				status, name, metric, base, cur, change*100)
		}
	}
	for name := range fresh {
		if _, ok := baseline[name]; !ok {
			fmt.Printf("NEW  %s: absent from baseline\n", name)
		}
	}
	// Tracing-overhead rule: the interleaved traced/untraced cost ratio the
	// traced replay benchmark measured within its own iterations.
	if pct, ok := fresh["BenchmarkLoadgenReplayTraced"]["trace_overhead_pct"]; ok {
		compared++
		status := "ok  "
		if pct > *traceOverhead*100 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s tracing overhead: %.1f%% traced-vs-untraced replay cost (limit %.0f%%)\n",
			status, pct, *traceOverhead*100)
	}
	// Priority-axis rule: the interleaved slo-urgency/constant cost ratio the
	// priority replay benchmark measured within its own iterations.
	if pct, ok := fresh["BenchmarkLoadgenReplayPriority"]["priority_overhead_pct"]; ok {
		compared++
		status := "ok  "
		if pct > *priorityOverhead*100 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s priority overhead: %.1f%% slo-urgency-vs-constant replay cost (limit %.0f%%)\n",
			status, pct, *priorityOverhead*100)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no guarded metrics in common — wrong files?")
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: benchmark gate failed (threshold %.0f%% vs %s, tracing overhead limit %.0f%%, priority overhead limit %.0f%%)\n",
			*threshold*100, flag.Arg(0), *traceOverhead*100, *priorityOverhead*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d guarded metrics within %.0f%% of baseline\n", compared, *threshold*100)
}
