package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNewNodeValidation(t *testing.T) {
	if _, err := newNode("", 1, 10, 1, "least-loaded", "accept-all"); err == nil {
		t.Fatal("missing admin token accepted")
	}
	if _, err := newNode("tok", 1, 0, 1, "least-loaded", "accept-all"); err == nil {
		t.Fatal("zero timescale accepted")
	}
	if _, err := newNode("tok", 1, -3, 1, "least-loaded", "accept-all"); err == nil {
		t.Fatal("negative timescale accepted")
	}
	if _, err := newNode("tok", 1, 10, 0, "least-loaded", "accept-all"); err == nil {
		t.Fatal("zero devices accepted")
	}
	if _, err := newNode("tok", 1, 10, 1, "coin-flip", "accept-all"); err == nil {
		t.Fatal("unknown router policy accepted")
	}
	if _, err := newNode("tok", 1, 10, 1, "least-loaded", "bouncer"); err == nil {
		t.Fatal("unknown admission policy accepted")
	}
}

// TestNodeFleetComposition boots a multi-partition node and checks the
// partitions surface through the fleet listing endpoint.
func TestNodeFleetComposition(t *testing.T) {
	n, err := newNode("secret", 7, 10, 3, "round-robin", "accept-all")
	if err != nil {
		t.Fatal(err)
	}
	if n.fleet.Size() != 3 {
		t.Fatalf("fleet size = %d", n.fleet.Size())
	}
	srv := httptest.NewServer(n.d.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/api/v1/sessions", "application/json",
		strings.NewReader(`{"user":"alice"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, _ := http.NewRequest("GET", srv.URL+"/api/v1/devices", nil)
	req.Header.Set("Authorization", "Bearer "+sess.Token)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fleet struct {
		Router  string `json:"router"`
		Devices []struct {
			ID string `json:"id"`
		} `json:"devices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Router != "round-robin" || len(fleet.Devices) != 3 {
		t.Fatalf("fleet = %+v", fleet)
	}
	if fleet.Devices[0].ID == fleet.Devices[1].ID {
		t.Fatalf("partition IDs not unique: %+v", fleet.Devices)
	}
}

// TestNodeServesEndToEnd boots the exact composition the binary serves and
// walks the public surface: health, session, device characteristics, metrics
// and the admin plane behind the token.
func TestNodeServesEndToEnd(t *testing.T) {
	n, err := newNode("secret", 7, 10, 1, "least-loaded", "slo-guard")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(n.d.Handler())
	defer srv.Close()

	get := func(path string, hdr map[string]string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest("GET", srv.URL+path, nil)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp, sb.String()
	}

	if resp, _ := get("/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Open a session and read device characteristics through it.
	resp, err := http.Post(srv.URL+"/api/v1/sessions", "application/json",
		strings.NewReader(`{"user":"alice"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		Token string `json:"token"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sess.Token == "" {
		t.Fatal("no session token returned")
	}
	if resp, body := get("/api/v1/device", map[string]string{"Authorization": "Bearer " + sess.Token}); resp.StatusCode != http.StatusOK || !strings.Contains(body, "max_qubits") {
		t.Fatalf("device = %d: %s", resp.StatusCode, body)
	}

	// Metrics exposition is public; the admin plane is gated.
	if resp, body := get("/metrics", nil); resp.StatusCode != http.StatusOK || !strings.Contains(body, "qpu_") {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if resp, _ := get("/admin/v1/status", nil); resp.StatusCode != http.StatusUnauthorized && resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unauthenticated admin status = %d", resp.StatusCode)
	}
	if resp, body := get("/admin/v1/status", map[string]string{"Authorization": "Bearer secret"}); resp.StatusCode != http.StatusOK || !strings.Contains(body, "device") {
		t.Fatalf("admin status = %d: %s", resp.StatusCode, body)
	}
}

// TestPumpAdvancesSimTime verifies the timescale pump: simulated time moves
// forward by ~timescale× wall time while it runs, and stops when told.
func TestPumpAdvancesSimTime(t *testing.T) {
	n, err := newNode("secret", 1, 500, 1, "least-loaded", "accept-all")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go n.pump(500, time.Millisecond, stop)
	deadline := time.After(2 * time.Second)
	for n.clk.Now() < 100*time.Millisecond*500 {
		select {
		case <-deadline:
			t.Fatalf("pump advanced only %s in 2s wall", n.clk.Now())
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	close(stop)
	frozen := n.clk.Now()
	time.Sleep(20 * time.Millisecond)
	if drift := n.clk.Now() - frozen; drift > 500*10*time.Millisecond {
		t.Fatalf("clock advanced %s after stop", drift)
	}
}
