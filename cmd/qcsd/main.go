// Command qcsd is the quantum access node middleware daemon (paper §3.3):
// it owns the QPU connection (here the device model), serves the user and
// admin REST APIs, and exposes the Prometheus metrics endpoint.
//
// Usage:
//
//	qcsd [-listen :8080] [-admin-token TOKEN] [-seed N] [-timescale X]
//	     [-devices N] [-router POLICY] [-admission POLICY] [-priority POLICY]
//	     [-program-cache N] [-setup S]
//	     [-slo-wait-target D] [-slo-warn-fraction F]
//	     [-trace-buffer N] [-debug-listen ADDR]
//
// -timescale compresses simulated device time: X simulated seconds advance
// per wall-clock second (default 10), so a 1 Hz-shot device is usable
// interactively.
//
// -devices sets the number of managed QPU partitions; -router picks how
// jobs are spread across them (round-robin, least-loaded, class-affinity,
// or the weighted scorer router affinity[:load=W:affinity=W:cap=W]);
// -admission picks the load-shedding policy at the submit pipeline's door
// (accept-all, queue-depth, token-bucket, slo-guard — slo-guard also takes
// inline parameters, e.g. slo-guard:wait=45s:warn=0.7, including
// lateness=F, the deadline-door factor for deadline-carrying submissions).
//
// -priority picks the dynamic-urgency scheduling axis that composes with the
// within-class order (constant, age, slo-urgency, edf — the deadline-driven
// pair also takes inline fallback-deadline parameters, e.g.
// slo-urgency:deadline=120s or edf:production=90s).
//
// -program-cache sizes each partition's calibration-warm program cache in
// entries (0 disables it); -setup charges that many QPU seconds of cold
// setup on every cache miss (requires -program-cache > 0).
//
// -slo-wait-target and -slo-warn-fraction override the slo-guard
// controller's production p99 wait target and down-class pressure fraction
// (they require -admission slo-guard).
//
// -trace-buffer sizes the flight recorder: the daemon retains the last N
// terminal job traces for GET /api/v1/trace and `qctl trace <job>`
// (0 disables tracing).
//
// -debug-listen starts a separate debug mux with net/http/pprof endpoints
// on the given address (off by default; keep it off untrusted networks).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"hpcqc/internal/admission"
	"hpcqc/internal/daemon"
	"hpcqc/internal/device"
	"hpcqc/internal/simclock"
	"hpcqc/internal/telemetry"
	"hpcqc/internal/trace"
)

// node is the assembled quantum access node: the simulated device fleet, the
// middleware daemon in front of it, and the shared clock that a background
// pump advances against wall time.
type node struct {
	clk   *simclock.Clock
	fleet *device.Fleet
	dev   *device.Device // first partition, for log lines
	d     *daemon.Daemon
}

// nodeOptions carries the tunables beyond the core sextet newNode has always
// taken — slo-guard controller overrides and the flight-recorder size.
type nodeOptions struct {
	// sloWaitTarget overrides the slo-guard production p99 wait target when
	// positive; sloWarnFraction overrides its down-class pressure fraction
	// when non-negative. Both require an slo-guard admission policy.
	sloWaitTarget   time.Duration
	sloWarnFraction float64
	// traceBuffer is the flight recorder's terminal-trace ring size; zero or
	// negative disables tracing entirely.
	traceBuffer int
	// programCache sizes each partition's calibration-warm program cache
	// (entries; 0 disables it); setupSeconds is the cold-setup QPU time a
	// cache miss charges the device (requires programCache > 0).
	programCache int
	setupSeconds float64
	// priority names the dynamic-urgency scheduling axis (empty = constant,
	// the identity policy).
	priority string
}

// defaultProgramCache is the serving default: large enough that an
// interactive session's re-runs stay calibration-warm, small enough that a
// partition never pins more than a screenful of programs.
const defaultProgramCache = 64

// newNode wires the fleet, daemon and observability stack exactly as the
// serving binary runs them, with a default-sized flight recorder. Split from
// main so tests can boot the same composition without sockets or flags.
func newNode(adminToken string, seed int64, timescale float64, devices int, routerPolicy, admissionPolicy string) (*node, error) {
	return newNodeOpts(adminToken, seed, timescale, devices, routerPolicy, admissionPolicy,
		nodeOptions{sloWarnFraction: -1, traceBuffer: trace.DefaultFlightCapacity,
			programCache: defaultProgramCache})
}

func newNodeOpts(adminToken string, seed int64, timescale float64, devices int, routerPolicy, admissionPolicy string, opts nodeOptions) (*node, error) {
	if adminToken == "" {
		return nil, fmt.Errorf("qcsd: -admin-token is required")
	}
	if timescale <= 0 {
		return nil, fmt.Errorf("qcsd: -timescale must be positive, got %g", timescale)
	}
	router, err := daemon.NewRouter(routerPolicy)
	if err != nil {
		return nil, fmt.Errorf("qcsd: %w", err)
	}
	admitter, err := admission.NewPolicy(admissionPolicy)
	if err != nil {
		return nil, fmt.Errorf("qcsd: %w", err)
	}
	priority, err := daemon.NewPriority(opts.priority)
	if err != nil {
		return nil, fmt.Errorf("qcsd: %w", err)
	}
	if opts.sloWaitTarget > 0 || opts.sloWarnFraction >= 0 {
		guard, ok := admitter.(*admission.SLOGuard)
		if !ok {
			return nil, fmt.Errorf("qcsd: -slo-wait-target/-slo-warn-fraction require -admission slo-guard (got %q)", admitter.Name())
		}
		if opts.sloWaitTarget > 0 {
			guard.WaitTarget = opts.sloWaitTarget
		}
		if opts.sloWarnFraction >= 0 {
			if opts.sloWarnFraction > 1 {
				return nil, fmt.Errorf("qcsd: -slo-warn-fraction must be in [0, 1], got %g", opts.sloWarnFraction)
			}
			guard.WarnFraction = opts.sloWarnFraction
		}
	}
	var flight *trace.FlightRecorder
	if opts.traceBuffer > 0 {
		flight = trace.NewFlightRecorder(opts.traceBuffer)
	}
	clk := simclock.New()
	reg := telemetry.NewRegistry()
	tsdb := telemetry.NewTSDB(24*time.Hour, 0)
	fleet, err := device.NewFleet(devices, device.Config{
		Clock: clk, Seed: seed, Registry: reg, TSDB: tsdb,
	})
	if err != nil {
		return nil, fmt.Errorf("qcsd: device: %w", err)
	}
	d, err := daemon.NewDaemon(daemon.Config{
		Devices: fleet.Devices(), Router: router, Admission: admitter, Priority: priority, Clock: clk,
		AdminToken:       adminToken,
		EnablePreemption: true,
		ProgramCache:     opts.programCache,
		SetupSeconds:     opts.setupSeconds,
		Registry:         reg, TSDB: tsdb,
		Flight: flight,
		Seed:   seed,
	})
	if err != nil {
		return nil, fmt.Errorf("qcsd: daemon: %w", err)
	}
	return &node{clk: clk, fleet: fleet, dev: fleet.Devices()[0], d: d}, nil
}

// pump advances simulated time by timescale seconds per wall second until
// stop is closed. tick controls the pump granularity.
func (n *node) pump(timescale float64, tick time.Duration, stop <-chan struct{}) {
	step := time.Duration(float64(tick) * timescale)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			n.clk.Advance(step)
		}
	}
}

func main() {
	listen := flag.String("listen", ":8080", "address to serve the REST API on")
	adminToken := flag.String("admin-token", "", "admin API token (required)")
	seed := flag.Int64("seed", 1, "device model seed")
	timescale := flag.Float64("timescale", 10, "simulated seconds per wall second")
	devices := flag.Int("devices", 1, "number of managed QPU partitions")
	router := flag.String("router", "least-loaded", "fleet routing policy (round-robin, least-loaded, class-affinity, affinity[:load=W:affinity=W:cap=W])")
	programCache := flag.Int("program-cache", defaultProgramCache, "per-partition calibration-warm program cache entries (0 disables)")
	setupSeconds := flag.Float64("setup", 0, "cold-setup QPU seconds charged on a program-cache miss (requires -program-cache > 0)")
	admissionPolicy := flag.String("admission", "accept-all", "admission policy (accept-all, queue-depth, token-bucket, slo-guard[:key=value...])")
	priorityPolicy := flag.String("priority", "constant", "dynamic-urgency scheduling axis (constant, age, slo-urgency[:key=DUR...], edf[:key=DUR...])")
	sloWait := flag.Duration("slo-wait-target", 0, "slo-guard production p99 wait target (0 = policy default; requires -admission slo-guard)")
	sloWarn := flag.Float64("slo-warn-fraction", -1, "slo-guard down-class pressure fraction in [0,1] (-1 = policy default; requires -admission slo-guard)")
	traceBuffer := flag.Int("trace-buffer", trace.DefaultFlightCapacity, "flight recorder size: retained terminal job traces (0 disables tracing)")
	debugListen := flag.String("debug-listen", "", "serve net/http/pprof on this address (empty = off)")
	flag.Parse()

	n, err := newNodeOpts(*adminToken, *seed, *timescale, *devices, *router, *admissionPolicy,
		nodeOptions{sloWaitTarget: *sloWait, sloWarnFraction: *sloWarn, traceBuffer: *traceBuffer,
			programCache: *programCache, setupSeconds: *setupSeconds, priority: *priorityPolicy})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	stop := make(chan struct{})
	defer close(stop)
	go n.pump(*timescale, 100*time.Millisecond, stop)

	if *debugListen != "" {
		// The profiler rides a separate mux on a separate listener, so
		// production API exposure never includes pprof by accident.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("qcsd: pprof debug mux on %s", *debugListen)
			if err := http.ListenAndServe(*debugListen, dbg); err != nil {
				log.Printf("qcsd: debug mux: %v", err)
			}
		}()
	}

	log.Printf("qcsd: serving %s ×%d (%s routing, %s admission, %s priority) on %s (timescale %gx)",
		n.dev.Spec().Name, n.fleet.Size(), n.d.RouterName(), n.d.AdmissionName(), n.d.PriorityName(), *listen, *timescale)
	if err := http.ListenAndServe(*listen, n.d.Handler()); err != nil {
		log.Fatalf("qcsd: %v", err)
	}
}
