// Command qcsd is the quantum access node middleware daemon (paper §3.3):
// it owns the QPU connection (here the device model), serves the user and
// admin REST APIs, and exposes the Prometheus metrics endpoint.
//
// Usage:
//
//	qcsd [-listen :8080] [-admin-token TOKEN] [-seed N] [-timescale X]
//	     [-devices N] [-router POLICY] [-admission POLICY]
//
// -timescale compresses simulated device time: X simulated seconds advance
// per wall-clock second (default 10), so a 1 Hz-shot device is usable
// interactively.
//
// -devices sets the number of managed QPU partitions; -router picks how
// jobs are spread across them (round-robin, least-loaded, class-affinity);
// -admission picks the load-shedding policy at the submit pipeline's door
// (accept-all, queue-depth, token-bucket, slo-guard).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"hpcqc/internal/admission"
	"hpcqc/internal/daemon"
	"hpcqc/internal/device"
	"hpcqc/internal/simclock"
	"hpcqc/internal/telemetry"
)

// node is the assembled quantum access node: the simulated device fleet, the
// middleware daemon in front of it, and the shared clock that a background
// pump advances against wall time.
type node struct {
	clk   *simclock.Clock
	fleet *device.Fleet
	dev   *device.Device // first partition, for log lines
	d     *daemon.Daemon
}

// newNode wires the fleet, daemon and observability stack exactly as the
// serving binary runs them. Split from main so tests can boot the same
// composition without sockets or flags.
func newNode(adminToken string, seed int64, timescale float64, devices int, routerPolicy, admissionPolicy string) (*node, error) {
	if adminToken == "" {
		return nil, fmt.Errorf("qcsd: -admin-token is required")
	}
	if timescale <= 0 {
		return nil, fmt.Errorf("qcsd: -timescale must be positive, got %g", timescale)
	}
	router, err := daemon.NewRouter(routerPolicy)
	if err != nil {
		return nil, fmt.Errorf("qcsd: %w", err)
	}
	admitter, err := admission.NewPolicy(admissionPolicy)
	if err != nil {
		return nil, fmt.Errorf("qcsd: %w", err)
	}
	clk := simclock.New()
	reg := telemetry.NewRegistry()
	tsdb := telemetry.NewTSDB(24*time.Hour, 0)
	fleet, err := device.NewFleet(devices, device.Config{
		Clock: clk, Seed: seed, Registry: reg, TSDB: tsdb,
	})
	if err != nil {
		return nil, fmt.Errorf("qcsd: device: %w", err)
	}
	d, err := daemon.NewDaemon(daemon.Config{
		Devices: fleet.Devices(), Router: router, Admission: admitter, Clock: clk,
		AdminToken:       adminToken,
		EnablePreemption: true,
		Registry:         reg, TSDB: tsdb,
		Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("qcsd: daemon: %w", err)
	}
	return &node{clk: clk, fleet: fleet, dev: fleet.Devices()[0], d: d}, nil
}

// pump advances simulated time by timescale seconds per wall second until
// stop is closed. tick controls the pump granularity.
func (n *node) pump(timescale float64, tick time.Duration, stop <-chan struct{}) {
	step := time.Duration(float64(tick) * timescale)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			n.clk.Advance(step)
		}
	}
}

func main() {
	listen := flag.String("listen", ":8080", "address to serve the REST API on")
	adminToken := flag.String("admin-token", "", "admin API token (required)")
	seed := flag.Int64("seed", 1, "device model seed")
	timescale := flag.Float64("timescale", 10, "simulated seconds per wall second")
	devices := flag.Int("devices", 1, "number of managed QPU partitions")
	router := flag.String("router", "least-loaded", "fleet routing policy (round-robin, least-loaded, class-affinity)")
	admissionPolicy := flag.String("admission", "accept-all", "admission policy (accept-all, queue-depth, token-bucket, slo-guard)")
	flag.Parse()

	n, err := newNode(*adminToken, *seed, *timescale, *devices, *router, *admissionPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	stop := make(chan struct{})
	defer close(stop)
	go n.pump(*timescale, 100*time.Millisecond, stop)

	log.Printf("qcsd: serving %s ×%d (%s routing, %s admission) on %s (timescale %gx)",
		n.dev.Spec().Name, n.fleet.Size(), n.d.RouterName(), n.d.AdmissionName(), *listen, *timescale)
	if err := http.ListenAndServe(*listen, n.d.Handler()); err != nil {
		log.Fatalf("qcsd: %v", err)
	}
}
