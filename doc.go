// Package hpcqc is a reproduction of "Towards a user-centric HPC-QC
// environment" (Wennersteen, Moreau, Nober, Beji — SC Workshops '25): a
// portable runtime environment for hybrid quantum-classical programs, a
// middleware daemon providing a second level of scheduling below the HPC
// batch scheduler, multi-SDK frontends over a vendor-neutral resource
// management interface, and a full observability stack — with every hardware
// and site dependency (neutral-atom QPU, Slurm, cloud services) substituted
// by faithful simulators so the complete system runs offline.
//
// # Fleet architecture
//
// The middleware daemon manages a fleet of N simulated QPU partitions
// (device.Fleet) rather than a single device. Its submit path is an
// explicit four-stage pipeline — admission → routing → queueing →
// dispatch — each stage an independent, composable policy axis:
//
//   - Admission ("who enters, at what class"): an admission.Policy —
//     accept-all, queue-depth, token-bucket, or slo-guard (an SLO
//     feedback controller that sheds or down-classes best-effort work
//     when production p99 targets are at risk; production is never
//     shed). Rejections are terminal job records with a reason,
//     surfaced as HTTP 429 and daemon_admission_* counters. qcsd
//     selects the policy with -admission POLICY.
//   - Routing ("which partition"): a daemon.Router — round-robin,
//     least-loaded, or class-affinity — picks the target partition at
//     submission time. qcsd selects it with -devices N -router POLICY;
//     submissions may also pin a named partition (pins bypass the
//     router, never the admission door).
//   - Queueing ("what order"): each partition keeps its own
//     sched.ClassQueue with the paper's priority classes; a
//     daemon.OrderPolicy (fifo, fair-share, shortest-expected-first)
//     orders work within a class.
//   - Dispatch ("when, whom to preempt"): production preemption,
//     confined to the victim's partition; the waits and slowdowns it
//     produces feed back into the admission stage.
//
// Dispatch is concurrent across partitions — per-device queues, running
// slots and dispatch loops — so one partition's backlog never serializes the
// rest. Preempted jobs are re-routed through the router onto idle partitions
// (cross-partition requeue) unless pinned. QRMI resources acquire against a
// named partition (qpu_partitions/qpu_partition config keys, or
// daemon.Client.Partition over HTTP). Per-partition queue depths and
// utilization surface in the admin StatusReport, the daemon_device_* gauges,
// and `qctl devices`.
//
// # Load generation and policy what-ifs
//
// internal/loadgen drives the fleet with production-shaped traffic: Poisson,
// bursty and diurnal arrival processes (and closed-loop think-time users)
// composed with the Table 1 class/pattern mixes, a versioned JSONL trace
// format with record and deterministic replay, a Parallel Workloads Archive
// SWF importer, an SLO analyzer over the daemon's job lifecycle events
// (per-class/per-partition p50/p95/p99 wait and slowdown plus shed-rate and
// goodput accounting, exported through telemetry histograms), and a what-if
// sweep that replays one trace against the full router × scheduler ×
// admission matrix concurrently. cmd/qcload is the CLI: gen, capture,
// import, info, replay, sweep.
//
// # Testing and benchmarks
//
// `make test` is the fast tier-1 gate (short mode); `make test-full` adds
// the long experiment reproductions, and `make test-race` covers the
// concurrent fleet paths. The benchmarks in bench_test.go regenerate every
// table and figure of the paper; BenchmarkFleetDispatch measures job
// throughput scaling from 1 to 4 partitions and BenchmarkLoadgenSweep the
// policy-matrix replay hot path (`make bench-json` records both to
// BENCH_fleet.json). Run with:
//
//	go test -bench='BenchmarkFleetDispatch|BenchmarkLoadgen' -run='^$' .
//
// See README.md for the architecture overview and qcload quickstart,
// DESIGN.md for the system inventory and experiment index, and
// EXPERIMENTS.md for how each result is regenerated. `go run ./cmd/hpcsim`
// prints the experiment tables as text.
package hpcqc
