// Package hpcqc is a reproduction of "Towards a user-centric HPC-QC
// environment" (Wennersteen, Moreau, Nober, Beji — SC Workshops '25): a
// portable runtime environment for hybrid quantum-classical programs, a
// middleware daemon providing a second level of scheduling below the HPC
// batch scheduler, multi-SDK frontends over a vendor-neutral resource
// management interface, and a full observability stack — with every hardware
// and site dependency (neutral-atom QPU, Slurm, cloud services) substituted
// by faithful simulators so the complete system runs offline.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate every table and
// figure; `go run ./cmd/hpcsim` prints them as text tables.
package hpcqc
