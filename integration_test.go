package hpcqc

// Cross-module integration tests: the full architecture assembled the way a
// hosting site would run it, exercised through its public seams (HTTP APIs,
// QRMI resources, the Slurm plugin environment) rather than package
// internals.

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hpcqc/internal/cloud"
	"hpcqc/internal/core"
	"hpcqc/internal/daemon"
	"hpcqc/internal/device"
	"hpcqc/internal/emulator"
	"hpcqc/internal/qir"
	"hpcqc/internal/qrmi"
	"hpcqc/internal/sched"
	"hpcqc/internal/simclock"
	"hpcqc/internal/slurm"
	"hpcqc/internal/telemetry"
)

func integrationProgram(shots int) *qir.Program {
	omega := 2 * math.Pi
	tPi := math.Pi / omega * 1000
	seq := qir.NewAnalogSequence(qir.LinearRegister("r", 2, 20))
	seq.Add(qir.GlobalRydberg, qir.Pulse{
		Amplitude: qir.ConstantWaveform{Dur: tPi, Val: omega},
		Detuning:  qir.ConstantWaveform{Dur: tPi, Val: 0},
	})
	return qir.NewAnalogProgram(seq, shots)
}

// TestFullStackSlurmToQPU drives the whole pipeline: a Slurm job starts, its
// plugin-resolved environment points the runtime at the daemon, the daemon
// schedules onto the device, and the result flows back — all on one
// simulated clock, with telemetry recorded at each layer.
func TestFullStackSlurmToQPU(t *testing.T) {
	clk := simclock.New()
	reg := telemetry.NewRegistry()
	tsdb := telemetry.NewTSDB(0, 0)
	dev, err := device.New(device.Config{Clock: clk, Seed: 31, Registry: reg, TSDB: tsdb})
	if err != nil {
		t.Fatal(err)
	}
	dmn, err := daemon.NewDaemon(daemon.Config{
		Device: dev, Clock: clk, AdminToken: "adm",
		EnablePreemption: true, Registry: reg, TSDB: tsdb,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := slurm.NewCluster(slurm.ClusterConfig{
		Clock: clk, Nodes: 4, QPUGres: 10,
		Partitions: []slurm.Partition{
			{Name: "production", Priority: 100, PreemptLower: true},
			{Name: "dev", Priority: 10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var jobID string
	var submitErr error
	_, err = cluster.Submit(slurm.JobSpec{
		Name: "hybrid", User: "alice", Partition: "production", Nodes: 1,
		Walltime: time.Hour, QPUUnits: 10, QPUResource: "qpu-onprem",
		Hint: "qc-balanced",
		OnStart: func(_ int, env map[string]string) {
			// The runtime inside the job: reads the plugin environment,
			// opens a daemon session, submits with the Slurm priority.
			if env["QRMI_RESOURCE"] != "qpu-onprem" || env["QRMI_QPU_SHARE"] != "1" {
				submitErr = nil
				t.Errorf("plugin env = %v", env)
			}
			sess, err := dmn.OpenSession(env["SLURM_JOB_USER"])
			if err != nil {
				submitErr = err
				return
			}
			prio := 0
			if _, err := jsonNumber(env["SLURM_JOB_PRIORITY"], &prio); err != nil {
				submitErr = err
				return
			}
			raw, err := integrationProgram(20).MarshalJSON()
			if err != nil {
				submitErr = err
				return
			}
			j, err := dmn.Submit(sess.Token, daemon.SubmitRequest{
				Program: raw,
				Class:   sched.ClassFromSlurmPriority(prio),
				Pattern: sched.Pattern(env["QRMI_WORKLOAD_HINT"]),
			})
			if err != nil {
				submitErr = err
				return
			}
			jobID = j.ID
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	if submitErr != nil {
		t.Fatal(submitErr)
	}
	if jobID == "" {
		t.Fatal("job never submitted through the stack")
	}
	// Admin view sees the job completed with production class.
	jobs := dmn.ListJobs()
	if len(jobs) != 1 || jobs[0].State != daemon.JobCompleted || jobs[0].ClassName() != "production" {
		t.Fatalf("admin jobs = %+v", jobs)
	}
	if jobs[0].Pattern != sched.PatternBalanced {
		t.Fatalf("hint lost: %q", jobs[0].Pattern)
	}
	// Telemetry flowed end to end.
	if reg.Get("qpu_shots_total").Value(nil) != 20 {
		t.Fatalf("shots metric = %g", reg.Get("qpu_shots_total").Value(nil))
	}
	if _, ok := tsdb.Latest("daemon_queue_length", telemetry.Labels{"class": "production"}); !ok {
		t.Fatal("daemon queue telemetry missing")
	}
}

// jsonNumber parses an integer from a string via the json package, keeping
// this file free of strconv for variety in parsing paths under test.
func jsonNumber(s string, out *int) (bool, error) {
	return true, json.Unmarshal([]byte(s), out)
}

// TestRuntimeAgainstDaemonHTTP binds the portable runtime to the daemon via
// its HTTP client resource and runs the same program that runs on local
// emulators — the daemon is just another --qpu target.
func TestRuntimeAgainstDaemonHTTP(t *testing.T) {
	clk := simclock.New()
	dev, err := device.New(device.Config{Clock: clk, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	dmn, err := daemon.NewDaemon(daemon.Config{Device: dev, Clock: clk, AdminToken: "adm", EnablePreemption: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(dmn.Handler())
	defer ts.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				clk.Advance(5 * time.Second)
			}
		}
	}()

	client, err := daemon.NewClient(ts.URL, "carol", sched.ClassProduction, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntimeWithResource(client, map[string]string{"resource": "daemon-qpu"})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Spec().Name != "analog-qpu" {
		t.Fatalf("spec through daemon = %s", rt.Spec().Name)
	}
	res, err := rt.Execute(integrationProgram(15))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.TotalShots() != 15 {
		t.Fatalf("shots = %d", res.Counts.TotalShots())
	}
	if res.Metadata["method"] != "hardware" {
		t.Fatalf("metadata = %v", res.Metadata)
	}
}

// TestRuntimeAgainstCloudHTTP binds the runtime to the cloud service — the
// loose-coupling path — and cross-checks physics with the local emulator.
func TestRuntimeAgainstCloudHTTP(t *testing.T) {
	srv := cloud.NewServer(cloud.ServerConfig{Tokens: []string{"tok"}, Seed: 3})
	if err := srv.RegisterDevice(emulator.NewSVBackend(emulator.SVConfig{})); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl, err := cloud.NewClient(ts.URL, "emu-sv", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntimeWithResource(cl, nil)
	if err != nil {
		t.Fatal(err)
	}
	cloudRes, err := rt.Execute(integrationProgram(2000))
	if err != nil {
		t.Fatal(err)
	}
	localRT, err := core.NewRuntimeFor("local-sv", "", []string{"QRMI_SEED=5"})
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := localRT.Execute(integrationProgram(2000))
	if err != nil {
		t.Fatal(err)
	}
	if tvd := emulator.TotalVariationDistance(cloudRes.Counts, localRes.Counts); tvd > 0.05 {
		t.Fatalf("cloud vs local TVD = %g", tvd)
	}
}

// TestDaemonSurvivesMaintenanceMidQueue covers the operational corner: jobs
// queue up, the admin takes the device down, queued work resumes afterwards.
func TestDaemonSurvivesMaintenanceMidQueue(t *testing.T) {
	clk := simclock.New()
	dev, _ := device.New(device.Config{Clock: clk, Seed: 35})
	dmn, _ := daemon.NewDaemon(daemon.Config{
		Device: dev, Clock: clk, AdminToken: "adm",
		AllowedLowLevelOps: []string{"maintenance_on", "maintenance_off"},
	})
	sess, _ := dmn.OpenSession("alice")
	raw, _ := integrationProgram(30).MarshalJSON()
	j1, err := dmn.Submit(sess.Token, daemon.SubmitRequest{Program: raw, Class: sched.ClassTest})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := dmn.Submit(sess.Token, daemon.SubmitRequest{Program: raw, Class: sched.ClassTest})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dmn.LowLevelOp("maintenance_on"); err != nil {
		t.Fatal(err)
	}
	// Running job (j1) completes; queued job (j2) must not start.
	clk.Advance(5 * time.Minute)
	s1, _ := dmn.JobStatus(sess.Token, j1.ID)
	s2, _ := dmn.JobStatus(sess.Token, j2.ID)
	if s1.State != daemon.JobCompleted {
		t.Fatalf("j1 = %s", s1.State)
	}
	if s2.State != daemon.JobQueued {
		t.Fatalf("j2 during maintenance = %s", s2.State)
	}
	if _, err := dmn.LowLevelOp("maintenance_off"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Minute)
	s2, _ = dmn.JobStatus(sess.Token, j2.ID)
	if s2.State != daemon.JobCompleted {
		t.Fatalf("j2 after maintenance = %s", s2.State)
	}
}

// TestQRMIResourceContract is a contract test: every local resource type
// honours the same lifecycle invariants.
func TestQRMIResourceContract(t *testing.T) {
	resources := map[string]qrmi.Resource{
		"emu-sv":  qrmi.NewEmulatorResource(emulator.NewSVBackend(emulator.SVConfig{}), 1),
		"emu-mps": qrmi.NewEmulatorResource(emulator.NewMPSBackend(emulator.MPSConfig{MaxBond: 4}), 2),
	}
	clk := simclock.New()
	dev, _ := device.New(device.Config{Clock: clk, Seed: 37})
	dr := qrmi.NewDeviceResource(dev, clk)
	dr.AutoAdvance = 30 * time.Second
	resources["qpu-direct"] = dr

	payload, err := qrmi.EncodeProgram(integrationProgram(10))
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range resources {
		t.Run(name, func(t *testing.T) {
			// Metadata carries a parseable spec.
			md, err := r.Metadata()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := qrmi.SpecFromMetadata(md); err != nil {
				t.Fatal(err)
			}
			// Task ops require acquire.
			if _, err := r.TaskStart(payload); err == nil {
				t.Fatal("TaskStart before Acquire accepted")
			}
			tok, err := r.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			id, err := r.TaskStart(payload)
			if err != nil {
				t.Fatal(err)
			}
			// Poll to terminal within bounds.
			var st qrmi.TaskState
			for i := 0; i < 100; i++ {
				st, err = r.TaskStatus(id)
				if err != nil {
					t.Fatal(err)
				}
				if st.Terminal() {
					break
				}
			}
			if st != qrmi.StateCompleted {
				t.Fatalf("state = %s", st)
			}
			raw, err := r.TaskResult(id)
			if err != nil {
				t.Fatal(err)
			}
			res, err := qrmi.DecodeResult(raw)
			if err != nil {
				t.Fatal(err)
			}
			if res.Counts.TotalShots() != 10 {
				t.Fatalf("shots = %d", res.Counts.TotalShots())
			}
			if err := r.Release(tok); err != nil {
				t.Fatal(err)
			}
			// Unknown task IDs error.
			if _, err := r.TaskStatus("ghost"); err == nil {
				t.Fatal("ghost status accepted")
			}
		})
	}
}

// TestEmulatorAgreementAcrossBackends is the physics contract: for an
// entangling blockade quench, the χ-limited MPS backend converges to the
// exact backend as χ grows.
func TestEmulatorAgreementAcrossBackends(t *testing.T) {
	omega := 2 * math.Pi
	seq := qir.NewAnalogSequence(qir.LinearRegister("chain", 6, 6))
	seq.Add(qir.GlobalRydberg, qir.Pulse{
		Amplitude: qir.ConstantWaveform{Dur: 300, Val: omega},
		Detuning:  qir.ConstantWaveform{Dur: 300, Val: 2},
	})
	prog := qir.NewAnalogProgram(seq, 30000)

	exact, err := emulator.NewSVBackend(emulator.SVConfig{DTNs: 0.5}).Run(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	var prevTVD = 2.0
	for _, chi := range []int{1, 4, 16} {
		res, err := emulator.NewMPSBackend(emulator.MPSConfig{MaxBond: chi, DTNs: 1}).Run(prog, 2)
		if err != nil {
			t.Fatal(err)
		}
		tvd := emulator.TotalVariationDistance(exact.Counts, res.Counts)
		if tvd > prevTVD+0.05 {
			t.Fatalf("χ=%d TVD %g worse than smaller χ %g", chi, tvd, prevTVD)
		}
		prevTVD = tvd
	}
	if prevTVD > 0.08 {
		t.Fatalf("χ=16 TVD vs exact = %g", prevTVD)
	}
}

// TestObservabilityEndToEnd scrapes the daemon's /metrics endpoint after
// real activity and checks the exposition parses as Prometheus text.
func TestObservabilityEndToEnd(t *testing.T) {
	clk := simclock.New()
	reg := telemetry.NewRegistry()
	dev, _ := device.New(device.Config{Clock: clk, Seed: 39, Registry: reg})
	dmn, _ := daemon.NewDaemon(daemon.Config{Device: dev, Clock: clk, AdminToken: "adm", Registry: reg})
	sess, _ := dmn.OpenSession("alice")
	raw, _ := integrationProgram(5).MarshalJSON()
	dmn.Submit(sess.Token, daemon.SubmitRequest{Program: raw, Class: sched.ClassDev})
	clk.Advance(time.Minute)

	out := reg.Expose()
	// Every line is either a comment or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
	for _, want := range []string{"qpu_up", "qpu_shots_total", "daemon_jobs_total", "daemon_job_wait_seconds_bucket"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %s:\n%s", want, out)
		}
	}
}
